//! Shared command-line handling for the experiment binaries.
//!
//! Every binary supports the same three flags; parsing lives here once
//! instead of per-bin:
//!
//! * `--telemetry` — append each run's kernel metrics to the report;
//! * `--verify` — print each run's conformance report and exit nonzero on
//!   any invariant violation;
//! * `--faults <spec>` — inject a [`faultsim::FaultPlan`] (see the spec
//!   grammar in `faultsim::plan`); a malformed spec is a usage error;
//! * `--threads <n>` — worker threads for per-node kernel runs (default 1
//!   = serial). Output is byte-identical at any value; only wall-clock
//!   time changes;
//! * `--policy <name>` — run a named balancing policy from
//!   [`schedsim::policies::registry`] instead of the paper's standard mode
//!   set (`--policy help` lists the zoo). Unknown names are usage errors;
//! * `--topology <spec>` — run every cell on an explicit scheduling-domain
//!   tree instead of the default OpenPower 710. Accepts a preset name
//!   (`openpower-710`, `2-socket`, `numa`, `wide-smt`, ...) or the spec
//!   grammar (`2x2x2c2t`, `2n4c2t`, ...; see `power5::Topology::parse`).
//!   A malformed spec is a usage error.

use crate::report::{fault_report, telemetry_report, verify_report};
use crate::runner::{ExperimentMode, RunResult};

/// The standard experiment flags, parsed once at startup.
#[derive(Debug)]
pub struct CliFlags {
    pub telemetry: bool,
    pub verify: bool,
    pub faults: Option<faultsim::FaultPlan>,
    /// Worker threads for per-node kernel runs; 1 means serial.
    pub threads: usize,
    /// Balancing policy selected with `--policy`, canonicalized against
    /// [`schedsim::policies::registry`]; `None` runs the standard modes.
    pub policy: Option<&'static str>,
    /// Scheduling-domain tree selected with `--topology`; `None` runs on
    /// the default OpenPower 710 tree (byte-identical to omitting the
    /// flag).
    pub topology: Option<power5::Topology>,
}

impl Default for CliFlags {
    fn default() -> Self {
        CliFlags {
            telemetry: false,
            verify: false,
            faults: None,
            threads: 1,
            policy: None,
            topology: None,
        }
    }
}

impl CliFlags {
    /// Parse the process arguments. A malformed or missing `--faults` spec
    /// is a usage error: exit 2 rather than running un-faulted experiments
    /// the caller did not ask for.
    pub fn from_env() -> CliFlags {
        let args: Vec<String> = std::env::args().skip(1).collect();
        match CliFlags::parse(&args) {
            Ok(flags) => flags,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
    }

    /// The testable core of [`CliFlags::from_env`].
    pub fn parse(args: &[String]) -> Result<CliFlags, String> {
        let mut flags = CliFlags::default();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--telemetry" => flags.telemetry = true,
                "--verify" => flags.verify = true,
                "--faults" => {
                    let spec =
                        it.next().ok_or_else(|| "--faults requires a spec argument".to_string())?;
                    flags.faults =
                        Some(faultsim::FaultPlan::parse(spec).map_err(|e| e.to_string())?);
                }
                "--threads" => {
                    let n = it
                        .next()
                        .ok_or_else(|| "--threads requires a count argument".to_string())?;
                    flags.threads = n
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| format!("--threads: expected a count >= 1, got {n:?}"))?;
                }
                "--policy" => {
                    let name = it
                        .next()
                        .ok_or_else(|| "--policy requires a policy name argument".to_string())?;
                    flags.policy =
                        Some(schedsim::policies::canonical(name).ok_or_else(|| {
                            format!(
                                "--policy: unknown policy {name:?}; registered policies:\n{}",
                                schedsim::policies::render_table()
                            )
                        })?);
                }
                "--topology" => {
                    let spec = it
                        .next()
                        .ok_or_else(|| "--topology requires a spec argument".to_string())?;
                    flags.topology = Some(power5::Topology::parse(spec).map_err(|e| {
                        format!(
                            "--topology: {e}; expected a preset (openpower-710, 2-socket, \
                             numa, wide-smt, single-core-st) or a spec such as 2x2x2c2t or \
                             2n4c2t"
                        )
                    })?);
                }
                _ => {}
            }
        }
        Ok(flags)
    }

    /// The experiment modes this invocation asks for: `modes` (the bin's
    /// standard cells) as-is without `--policy`, or the baseline plus the
    /// selected policy with it — so every bin gets the policy axis without
    /// a per-bin match on names.
    pub fn modes(&self, modes: &[ExperimentMode]) -> Vec<ExperimentMode> {
        match self.policy {
            None => modes.to_vec(),
            Some(p) => vec![ExperimentMode::Baseline, ExperimentMode::Policy(p)],
        }
    }

    /// The standard end-of-report epilogue: fault summaries (when any run
    /// carries one), telemetry (under `--telemetry`), and conformance
    /// verdicts (under `--verify`, exiting 1 on violations).
    pub fn epilogue(&self, results: &[RunResult]) {
        if results.iter().any(|r| r.fault.is_some()) {
            print!("{}", fault_report(results));
        }
        if self.telemetry {
            print!("{}", telemetry_report(results));
        }
        if self.verify {
            print!("{}", verify_report(results));
            if results.iter().any(|r| !r.conformance.is_clean()) {
                eprintln!("verify: invariant violations detected");
                std::process::exit(1);
            }
        }
    }

    /// Output-file prefix for machine-readable results: the bin's base
    /// name, suffixed with the canonical topology spec when a non-default
    /// tree is selected so `--topology` runs never clobber the canonical
    /// OpenPower 710 outputs under `experiments_output/`.
    pub fn output_slug(&self, base: &str) -> String {
        match &self.topology {
            // A dash, not a dot: `save_outputs` derives filenames with
            // `Path::with_extension`, which would swallow a dotted suffix.
            Some(t) if *t != power5::Topology::openpower_710() => {
                format!("{base}-{}", t.render_spec())
            }
            _ => base.to_string(),
        }
    }

    /// Note for binaries that run no scheduler kernel: acknowledge the
    /// flag instead of silently ignoring it.
    pub fn note_no_kernel(&self) {
        if self.telemetry {
            println!("\n(--telemetry: this binary runs no scheduler kernel; nothing to report)");
        }
    }
}

/// Generic `--name value` lookup for bin-specific options.
pub fn value_of(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
    }
    None
}

/// Generic boolean flag lookup for bin-specific options.
pub fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_the_three_standard_flags() {
        let f = CliFlags::parse(&strs(&["--telemetry", "--verify"])).unwrap();
        assert!(f.telemetry && f.verify && f.faults.is_none());
        let f = CliFlags::parse(&strs(&[])).unwrap();
        assert!(!f.telemetry && !f.verify);
    }

    #[test]
    fn parses_a_fault_spec() {
        let f = CliFlags::parse(&strs(&["--faults", "seed=7; slow:rank=1,at=100ms,factor=0.5"]))
            .unwrap();
        assert!(f.faults.is_some());
    }

    #[test]
    fn malformed_faults_is_a_usage_error() {
        assert!(CliFlags::parse(&strs(&["--faults"])).is_err());
        assert!(CliFlags::parse(&strs(&["--faults", "nonsense:"])).is_err());
    }

    #[test]
    fn unknown_arguments_are_ignored() {
        let f = CliFlags::parse(&strs(&["--jobs", "200", "--verify"])).unwrap();
        assert!(f.verify);
    }

    #[test]
    fn parses_and_canonicalizes_policy() {
        let f = CliFlags::parse(&strs(&["--policy", "gss"])).unwrap();
        assert_eq!(f.policy, Some("gss"));
        assert_eq!(
            f.modes(&[ExperimentMode::Baseline, ExperimentMode::Uniform]),
            vec![ExperimentMode::Baseline, ExperimentMode::Policy("gss")]
        );
        let f = CliFlags::parse(&strs(&[])).unwrap();
        assert_eq!(f.policy, None);
        let std_modes = [ExperimentMode::Baseline, ExperimentMode::Uniform];
        assert_eq!(f.modes(&std_modes), std_modes.to_vec());
    }

    #[test]
    fn unknown_policy_is_a_usage_error_listing_the_zoo() {
        let err = CliFlags::parse(&strs(&["--policy", "lottery"])).unwrap_err();
        assert!(err.contains("unknown policy"), "{err}");
        assert!(err.contains("worksteal"), "error lists the registry: {err}");
        assert!(CliFlags::parse(&strs(&["--policy"])).is_err());
    }

    #[test]
    fn parses_topology_presets_and_specs() {
        let f = CliFlags::parse(&strs(&[])).unwrap();
        assert!(f.topology.is_none());
        let f = CliFlags::parse(&strs(&["--topology", "openpower-710"])).unwrap();
        assert_eq!(f.topology, Some(power5::Topology::openpower_710()));
        let f = CliFlags::parse(&strs(&["--topology", "2n2c2t"])).unwrap();
        assert_eq!(f.topology.unwrap().num_cpus(), 8);
    }

    #[test]
    fn output_slug_namespaces_non_default_topologies() {
        let f = CliFlags::parse(&strs(&[])).unwrap();
        assert_eq!(f.output_slug("metbench"), "metbench");
        let f = CliFlags::parse(&strs(&["--topology", "openpower-710"])).unwrap();
        assert_eq!(f.output_slug("metbench"), "metbench");
        let f = CliFlags::parse(&strs(&["--topology", "2n2c2t"])).unwrap();
        assert_eq!(f.output_slug("metbench"), "metbench-2n2c2t");
    }

    #[test]
    fn malformed_topology_is_a_usage_error() {
        assert!(CliFlags::parse(&strs(&["--topology"])).is_err());
        let err = CliFlags::parse(&strs(&["--topology", "nonsense"])).unwrap_err();
        assert!(err.contains("openpower-710"), "error lists presets: {err}");
    }

    #[test]
    fn parses_threads_and_defaults_to_serial() {
        assert_eq!(CliFlags::parse(&strs(&[])).unwrap().threads, 1);
        assert_eq!(CliFlags::parse(&strs(&["--threads", "4"])).unwrap().threads, 4);
    }

    #[test]
    fn bad_threads_is_a_usage_error() {
        assert!(CliFlags::parse(&strs(&["--threads"])).is_err());
        assert!(CliFlags::parse(&strs(&["--threads", "0"])).is_err());
        assert!(CliFlags::parse(&strs(&["--threads", "many"])).is_err());
    }
}
