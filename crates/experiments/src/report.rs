//! Shared reporting: paper-vs-measured tables and figure rendering.

use crate::paper::{paper_improvement, paper_row, PaperRow};
use crate::runner::{ExperimentMode, RunResult};
use std::fmt::Write;
use tracefmt::{render_timeline, AsciiOptions};

/// Print one experiment: measured table, paper-vs-measured summary, and
/// (optionally) the ASCII trace figures.
pub fn report(
    title: &str,
    paper_table: &'static [PaperRow],
    results: &[RunResult],
    with_figures: bool,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "==== {title} ====\n");

    // Measured table (paper layout).
    let _ = writeln!(out, "{}", crate::runner::comparison_table(results));

    // Paper vs measured.
    let base = results.iter().find(|r| r.mode == ExperimentMode::Baseline).map(|r| r.exec_secs);
    let _ = writeln!(
        out,
        "{:<10} {:>14} {:>14} {:>12} {:>12}",
        "Mode", "paper exec(s)", "ours exec(s)", "paper imp.", "ours imp."
    );
    for r in results {
        let paper = paper_row(paper_table, r.mode.label());
        let p_exec =
            paper.map(|p| format!("{:.2}", p.exec_secs)).unwrap_or_else(|| "-".to_string());
        let p_imp = paper_improvement(paper_table, r.mode.label())
            .map(|v| format!("{v:+.1}%"))
            .unwrap_or_else(|| "-".to_string());
        let o_imp = base
            .map(|b| format!("{:+.1}%", 100.0 * (b - r.exec_secs) / b))
            .unwrap_or_else(|| "-".to_string());
        let _ = writeln!(
            out,
            "{:<10} {:>14} {:>14.2} {:>12} {:>12}",
            r.mode.label(),
            p_exec,
            r.exec_secs,
            p_imp,
            o_imp
        );
    }
    let _ = writeln!(out);

    if with_figures {
        for r in results {
            let _ = writeln!(out, "--- {} / {} trace ---", title, r.mode.label());
            let _ = write!(
                out,
                "{}",
                render_timeline(&r.timeline, &AsciiOptions { width: 110, ..Default::default() })
            );
            let _ = writeln!(out);
        }
    }
    out
}

/// Render the end-of-run kernel metrics of each result: a JSON snapshot
/// followed by a human-readable summary, per mode.
pub fn telemetry_report(results: &[RunResult]) -> String {
    let mut out = String::new();
    for r in results {
        let _ = writeln!(out, "--- telemetry: {} / {} ---", r.workload, r.mode.label());
        let _ = writeln!(out, "{}", telemetry::export::snapshot_to_json(&r.metrics));
        let _ = writeln!(out, "{}", telemetry::export::snapshot_summary(&r.metrics));
    }
    out
}

/// Render the fault summary of each fault-injected result.
pub fn fault_report(results: &[RunResult]) -> String {
    let mut out = String::new();
    for r in results {
        if let Some(s) = &r.fault {
            let _ = writeln!(out, "--- faults: {} / {} ---", r.workload, r.mode.label());
            let _ = writeln!(out, "{s}");
        }
    }
    out
}

/// Render the conformance verdict of each result.
pub fn verify_report(results: &[RunResult]) -> String {
    let mut out = String::new();
    for r in results {
        let _ = writeln!(out, "--- verify: {} / {} ---", r.workload, r.mode.label());
        let _ = writeln!(out, "{}", r.conformance.render().trim_end());
    }
    out
}

/// Persist machine-readable outputs of an experiment under `dir`.
pub fn save_outputs(
    dir: &std::path::Path,
    slug: &str,
    results: &[RunResult],
) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    for r in results {
        let base = dir.join(format!("{}_{}", slug, r.mode.label().to_lowercase()));
        std::fs::write(
            base.with_extension("stats.csv"),
            tracefmt::export::stats_to_csv(&r.stats),
        )?;
        std::fs::write(
            base.with_extension("trace.csv"),
            tracefmt::export::timeline_to_csv(&r.timeline),
        )?;
        // Paraver-format trace, loadable in the paper's own tool.
        std::fs::write(base.with_extension("prv"), tracefmt::prv::to_prv(&r.timeline))?;
        std::fs::write(base.with_extension("pcf"), tracefmt::prv::to_pcf())?;
        // Kernel metrics: full snapshot as JSON, per-rank utilization as a
        // time-series CSV.
        std::fs::write(
            base.with_extension("metrics.json"),
            telemetry::export::snapshot_to_json(&r.metrics),
        )?;
        std::fs::write(
            base.with_extension("telemetry.csv"),
            telemetry::export::timeseries_to_csv(&r.utilization_series),
        )?;
    }
    Ok(())
}
