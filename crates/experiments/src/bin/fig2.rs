//! Paper Figure 2: the iterative run/wait behaviour of one HPC task.

use experiments::cli::CliFlags;
use experiments::{run, ExperimentMode, WorkloadKind};
use tracefmt::{render_timeline, AsciiOptions};
use workloads::metbench::MetBenchConfig;

fn main() {
    let flags = CliFlags::from_env();
    let cfg = MetBenchConfig {
        loads: vec![0.3, 1.2, 0.3, 1.2],
        iterations: 6,
        ..Default::default()
    };
    let r = run(&WorkloadKind::MetBench(cfg), ExperimentMode::Baseline, 42);
    println!("Figure 2 — iterative behaviour: compute phase (tR) then wait (tW)\n");
    let one = r.timeline.filter_tasks(&r.ranks[..1]);
    print!("{}", render_timeline(&one, &AsciiOptions { width: 110, ..Default::default() }));
    let tl = &one.tasks[0];
    println!("\nPer-iteration utilization Ui = tR/ti for {}:", tl.name);
    for (i, (t, u)) in tl.iterations.iter().enumerate().skip(1) {
        println!("  iteration {:>2} ended at {:>8.3}s  Ui = {:>5.1}%", i, t.as_secs_f64(), u * 100.0);
    }
    flags.epilogue(std::slice::from_ref(&r));
}
