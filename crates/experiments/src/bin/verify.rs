//! CI verification harness: conformance-check a small seeded MetBench run
//! under every scheduler mode, then prove determinism by running the
//! dynamic heuristics twice with one seed and comparing traces
//! record-by-record. Exits nonzero on any violation or divergence.
//!
//! The fault sections exercise `faultsim` end to end: every fault class is
//! injected into every scheduler mode and must leave the trace
//! conformance-clean; a fail-stop crash must surface as a typed error, not
//! a panic; an *empty* fault plan must leave the trace byte-identical to a
//! run without faultsim wired in; a heavily faulted run must still be
//! deterministic; and a cluster node failure must be absorbed or degrade
//! gracefully. The measured fault baseline lands in `BENCH_faults.json`.
//!
//! The parallel section re-runs a batch stream at `--threads N` (default
//! 4) and requires the rendered event trace and the metrics snapshot to be
//! byte-identical to the serial run — the executor-pool determinism
//! contract, checked end to end.

use batchsim::{
    heavy_light_mix, resume_batch, run_batch, run_batch_until, BatchCheckpoint, BatchConfig,
    Discipline, FleetShape,
};
use cluster::{
    run_cluster_faulted, ClusterConfig, JobSpec, LocalSched, NodeFailure, PlacementStrategy,
};
use experiments::cli::{self, CliFlags};
use experiments::runner::{run, run_on, run_with_faults, ExperimentMode, WorkloadKind};
use faultsim::{FaultError, FaultPlan};
use workloads::metbench::MetBenchConfig;

/// One row of the `BENCH_faults.json` baseline.
#[derive(serde::Serialize)]
struct BenchRow {
    class: &'static str,
    spec: &'static str,
    mode: &'static str,
    seed: u64,
    exec_secs: f64,
    summary: faultsim::FaultSummary,
}

fn small_metbench() -> WorkloadKind {
    WorkloadKind::MetBench(MetBenchConfig {
        loads: vec![0.05, 0.2, 0.05, 0.2],
        iterations: 6,
        ..Default::default()
    })
}

/// One seeded spec per fault class (DESIGN.md §9).
const FAULT_MATRIX: [(&str, &str); 5] = [
    ("steal", "seed=7; steal:cpu=0,period=40ms,duration=5ms,count=6,jitter"),
    ("slow", "seed=7; slow:rank=1,at=100ms,factor=0.5"),
    // MetBench only point-to-point-sends during init (a handful of
    // messages), so use prob=1 to make the spike count deterministic.
    ("mpidelay", "seed=7; mpidelay:prob=1.0,extra=200us"),
    ("crash-restart", "seed=7; crash:rank=1,iter=3,policy=restart,delay=50ms"),
    ("crash-failstop", "seed=7; crash:rank=1,iter=3,policy=failstop"),
];

/// FNV-1a 64-bit fingerprint over the Debug rendering of a trace — the
/// regression gate asserted against `TRACE_baseline.txt`, which pins the
/// HPCSched traces captured before the Balancer-trait refactor.
fn trace_fingerprint(records: &[schedsim::TraceRecord]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for rec in records {
        for b in format!("{rec:?}\n").bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

/// FNV-1a 64-bit over an already-rendered trace (batch event traces).
fn text_fingerprint(text: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Repository root for the static-analysis pass: the working directory
/// when run from a checkout, the workspace root when run via `cargo run`.
fn repo_root() -> std::path::PathBuf {
    if std::path::Path::new("crates").is_dir() {
        std::path::PathBuf::from(".")
    } else {
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
    }
}

/// Run the SV001–SV014 static-analysis pass. Returns `false` on rule
/// violations or allowlist hygiene failures (stale/expired entries).
/// With `json`, the stable report goes to stdout (for the CI baseline
/// diff); human-readable findings go to stdout otherwise.
fn run_lint(json: bool) -> bool {
    let report = match simverify::lint::lint_workspace(&repo_root()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint: workspace scan failed: {e}");
            return false;
        }
    };
    if json {
        print!("{}", report.to_json());
    } else {
        for v in &report.violations {
            println!("{v}");
        }
        for stale in &report.unused_allow {
            println!("stale allowlist entry (suppresses nothing): {stale}");
        }
        for expired in &report.expired_allow {
            println!("expired allowlist entry (re-justify or fix the code): {expired}");
        }
        println!(
            "lint: {} files, {} rules, {} roots, {}/{} fns reachable — {}",
            report.files_scanned,
            simverify::lint::RULES.len(),
            report.roots.len(),
            report.reachable_fns,
            report.total_fns,
            if report.is_passing() { "clean" } else { "FAILING" }
        );
    }
    report.is_passing()
}

fn main() {
    const SEED: u64 = 2008;
    let flags = CliFlags::from_env();

    // `--lint` runs the static-analysis pass alone (optionally as JSON via
    // `--report json`) and exits without touching BENCH_* artifacts — the
    // mode CI's lint job and the baseline diff use.
    if cli::flag("--lint") {
        let json = cli::value_of("--report").as_deref() == Some("json");
        if run_lint(json) {
            return;
        }
        std::process::exit(1);
    }

    let wl = small_metbench();
    let mut failed = false;

    println!("== static analysis: simverify SV001-SV014 over the workspace ==");
    failed |= !run_lint(false);

    println!("\n== conformance: MetBench (4 ranks, 6 iterations, seed {SEED}) ==");
    let all_modes = [
        ExperimentMode::Baseline,
        ExperimentMode::Static,
        ExperimentMode::Uniform,
        ExperimentMode::Adaptive,
        ExperimentMode::Hybrid,
    ];
    for mode in all_modes {
        let r = run(&wl, mode, SEED);
        println!("{:<10} {}", mode.label(), r.conformance.render().trim_end());
        failed |= !r.conformance.is_clean();
    }

    println!("\n== trace hashes: HPCSched traces vs pre-refactor baseline ==");
    let mut hash_lines = Vec::new();
    for mode in all_modes {
        let r = run(&wl, mode, SEED);
        hash_lines.push(format!(
            "trace-hash metbench/{} {:016x}",
            mode.label(),
            trace_fingerprint(&r.records)
        ));
    }
    {
        let plan = FaultPlan::parse(FAULT_MATRIX[0].1).expect("matrix specs are valid");
        let r = run_with_faults(&wl, ExperimentMode::Uniform, SEED, &plan);
        hash_lines.push(format!(
            "trace-hash metbench-steal/Uniform {:016x}",
            trace_fingerprint(&r.records)
        ));
    }
    // The 200-job batch study under every discipline: the byte-identity
    // gate that pins the engine refactors (reservation index, pending
    // queue) to the pre-refactor traces.
    {
        let stream = heavy_light_mix(SEED, 200);
        for discipline in Discipline::ALL {
            let cfg = BatchConfig { discipline, ..Default::default() };
            let out = run_batch(&stream, &cfg, None);
            hash_lines.push(format!(
                "trace-hash batch/{} {:016x}",
                discipline.label(),
                text_fingerprint(&out.render_trace())
            ));
        }
    }
    for line in &hash_lines {
        println!("{line}");
    }
    match std::fs::read_to_string("TRACE_baseline.txt") {
        Ok(baseline) => {
            let want: Vec<&str> =
                baseline.lines().filter(|l| !l.is_empty() && !l.starts_with('#')).collect();
            let got: Vec<&str> = hash_lines.iter().map(|s| s.as_str()).collect();
            if want == got {
                println!("trace hashes match TRACE_baseline.txt");
            } else {
                println!("TRACE HASH MISMATCH vs TRACE_baseline.txt");
                println!("  want: {want:?}");
                println!("  got:  {got:?}");
                failed = true;
            }
        }
        Err(e) => println!("warning: TRACE_baseline.txt not read ({e}); trace gate skipped"),
    }

    println!("\n== determinism: identical (config, seed) => identical trace ==");
    for mode in [ExperimentMode::Uniform, ExperimentMode::Adaptive] {
        match simverify::determinism::check(|| run(&wl, mode, SEED).records) {
            Ok(n) => println!("{:<10} deterministic ({n} records)", mode.label()),
            Err(d) => {
                println!("{:<10} NONDETERMINISTIC\n{d}", mode.label());
                failed = true;
            }
        }
    }

    println!("\n== faults: every class x every mode stays conformance-clean ==");
    let mut bench = Vec::new();
    for (class, spec) in FAULT_MATRIX {
        let plan = FaultPlan::parse(spec).expect("matrix specs are valid");
        for mode in all_modes {
            let r = run_with_faults(&wl, mode, SEED, &plan);
            let summary = r.fault.expect("faulted run carries a summary");
            let clean = r.conformance.is_clean();
            println!(
                "{class:<14} {:<10} {} | {summary}",
                mode.label(),
                if clean { "clean" } else { "VIOLATIONS" },
            );
            failed |= !clean;
            // Each class must actually inject (or absorb) something — a
            // zero count means the hook is not wired, not that the stack
            // coped.
            let exercised = match class {
                "steal" => summary.steal_bursts_injected > 0,
                "slow" => summary.slowdowns_injected > 0,
                "mpidelay" => summary.mpi_delays_injected > 0,
                "crash-restart" => summary.restarts_absorbed > 0,
                "crash-failstop" => summary.aborted.is_some(),
                _ => unreachable!(),
            };
            if !exercised {
                println!("  fault class `{class}` injected nothing");
                failed = true;
            }
            match class {
                // A fail-stop crash must end in the typed error, with the
                // partial trace still collected.
                "crash-failstop" => {
                    let ok = matches!(
                        summary.aborted,
                        Some(FaultError::RankFailStop { rank: 1, .. })
                    ) && !r.records.is_empty();
                    if !ok {
                        println!("  expected typed RankFailStop abort, got {:?}", summary.aborted);
                        failed = true;
                    }
                }
                // Every other class must be absorbed: the run completes.
                _ => {
                    if let Some(e) = summary.aborted {
                        println!("  expected completion, got abort: {e}");
                        failed = true;
                    }
                }
            }
            if mode == ExperimentMode::Adaptive {
                bench.push(BenchRow {
                    class,
                    spec,
                    mode: mode.label(),
                    seed: SEED,
                    exec_secs: r.exec_secs,
                    summary,
                });
            }
        }
    }

    println!("\n== faults: empty plan is byte-identical to a plain run ==");
    for mode in [ExperimentMode::Uniform, ExperimentMode::Adaptive] {
        let plain = run(&wl, mode, SEED).records;
        let empty = run_with_faults(&wl, mode, SEED, &FaultPlan::default()).records;
        match simverify::determinism::first_divergence(&plain, &empty) {
            None => println!("{:<10} identical ({} records)", mode.label(), plain.len()),
            Some(d) => {
                println!("{:<10} DIVERGED\n{d}", mode.label());
                failed = true;
            }
        }
    }

    println!("\n== faults: a faulted run is itself deterministic ==");
    let stress = FaultPlan::parse(
        "seed=11; steal:cpu=1,period=30ms,duration=4ms,count=8,jitter; \
         slow:rank=0,at=80ms,factor=0.6; mpidelay:prob=0.3,extra=300us; \
         crash:rank=2,iter=2,policy=restart,delay=20ms",
    )
    .expect("stress spec is valid");
    match simverify::determinism::check(|| {
        run_with_faults(&wl, ExperimentMode::Adaptive, SEED, &stress).records
    }) {
        Ok(n) => println!("Adaptive   deterministic ({n} records)"),
        Err(d) => {
            println!("Adaptive   NONDETERMINISTIC\n{d}");
            failed = true;
        }
    }

    println!("\n== faults: cluster node failure absorbs or degrades, never panics ==");
    let job = JobSpec::new("vfy", vec![0.05; 6], 6);
    let nf = NodeFailure { node: 1, at_iteration: 3, max_retries: 2, restart_secs: 0.5 };
    let cfg3 = ClusterConfig { num_nodes: 3, ..Default::default() };
    match run_cluster_faulted(&job, PlacementStrategy::GreedyLpt, &cfg3, Some(&nf)) {
        Ok(out) if out.failure.map(|f| f.absorbed) == Some(true) && !out.degraded => {
            println!("3 nodes    absorbed (makespan {:.3}s)", out.result.makespan);
        }
        other => {
            println!("3 nodes    expected absorbed outcome, got {other:?}");
            failed = true;
        }
    }
    let tight = JobSpec::new("vfy", vec![0.05; 8], 6);
    let nf0 = NodeFailure { node: 0, at_iteration: 2, max_retries: 2, restart_secs: 0.5 };
    let cfg2 = ClusterConfig { num_nodes: 2, ..Default::default() };
    match run_cluster_faulted(&tight, PlacementStrategy::GreedyLpt, &cfg2, Some(&nf0)) {
        Ok(out) if out.degraded && out.failure.map(|f| !f.absorbed) == Some(true) => {
            println!("2 nodes    degraded gracefully (partial makespan {:.3}s)", out.result.makespan);
        }
        other => {
            println!("2 nodes    expected degraded outcome, got {other:?}");
            failed = true;
        }
    }

    println!("\n== policy zoo: every --policy x {{plain + every fault class}} ==");
    for spec in schedsim::policies::registry() {
        let mode = ExperimentMode::Policy(spec.name);
        // Plain run: C001–C005 conformance plus a double-run determinism
        // check (identical seed => identical trace).
        let det = simverify::determinism::check(|| run(&wl, mode, SEED).records);
        let r = run(&wl, mode, SEED);
        let clean = r.conformance.is_clean();
        println!(
            "policy-hash {:<12} {:016x} {} {}",
            spec.name,
            trace_fingerprint(&r.records),
            if clean { "clean" } else { "VIOLATIONS" },
            match &det {
                Ok(n) => format!("deterministic ({n} records)"),
                Err(_) => "NONDETERMINISTIC".to_string(),
            }
        );
        if !clean {
            println!("{}", r.conformance.render().trim_end());
            failed = true;
        }
        if let Err(d) = det {
            println!("{d}");
            failed = true;
        }
        // The full fault matrix per policy. C001 staying clean under every
        // class is the do-no-harm floor, end to end: even while degraded,
        // no hardware priority leaves the [MEDIUM, HIGH] tunable band.
        let mut fault_cells = Vec::new();
        for (class, fspec) in FAULT_MATRIX {
            let plan = FaultPlan::parse(fspec).expect("matrix specs are valid");
            let fr = run_with_faults(&wl, mode, SEED, &plan);
            let summary = fr.fault.expect("faulted run carries a summary");
            let mut ok = fr.conformance.is_clean();
            if !ok {
                println!("  {class}: VIOLATIONS\n{}", fr.conformance.render().trim_end());
            }
            match class {
                "crash-failstop" => {
                    if !matches!(summary.aborted, Some(FaultError::RankFailStop { rank: 1, .. })) {
                        println!("  {class}: expected typed RankFailStop, got {:?}", summary.aborted);
                        ok = false;
                    }
                }
                _ => {
                    if let Some(e) = summary.aborted {
                        println!("  {class}: expected completion, got abort: {e}");
                        ok = false;
                    }
                }
            }
            failed |= !ok;
            fault_cells.push(format!("{class}:{}", if ok { "ok" } else { "FAIL" }));
        }
        println!("  faults      {}", fault_cells.join(" "));
    }

    let par_threads = if flags.threads > 1 { flags.threads } else { 4 };
    println!("\n== parallel: batch at {par_threads} threads is byte-identical to serial ==");
    let stream = heavy_light_mix(SEED, 24);
    for discipline in Discipline::ALL {
        let cfg = BatchConfig {
            discipline,
            sched: LocalSched::Cfs,
            threads: 1,
            ..Default::default()
        };
        let serial = run_batch(&stream, &cfg, None);
        let par = run_batch(&stream, &BatchConfig { threads: par_threads, ..cfg }, None);
        let trace_ok = simverify::determinism::check_identical(
            "trace",
            &serial.render_trace(),
            &par.render_trace(),
        );
        match trace_ok {
            Ok(n) => println!("{:<10} trace identical ({n} events)", discipline.label()),
            Err(d) => {
                println!("{:<10} PARALLEL DIVERGENCE\n{d}", discipline.label());
                failed = true;
            }
        }
        if serial.metrics != par.metrics {
            println!("{:<10} PARALLEL DIVERGENCE (metrics snapshots differ)", discipline.label());
            failed = true;
        }
    }

    // The heterogeneous-topology gate (DESIGN.md §16). The pinned trace
    // hashes above all run on the default OpenPower 710 tree; these
    // sections prove the topology axis is sound without touching them:
    // an explicit `openpower-710` must be byte-identical to the default,
    // and a 3-level NUMA tree must run the workload x mode matrix and the
    // whole policy zoo conformance-clean and deterministically.
    println!("\n== topology: explicit openpower-710 is byte-identical to the default ==");
    let p710 = power5::Topology::openpower_710();
    for mode in all_modes {
        let plain = run(&wl, mode, SEED).records;
        let explicit = run_on(&wl, mode, SEED, Some(&p710)).records;
        match simverify::determinism::first_divergence(&plain, &explicit) {
            None => println!("{:<10} identical ({} records)", mode.label(), plain.len()),
            Some(d) => {
                println!("{:<10} DIVERGED\n{d}", mode.label());
                failed = true;
            }
        }
    }

    println!("\n== topology: workload x mode matrix on a 3-level NUMA tree (2n2c2t) ==");
    let numa = power5::Topology::parse("2n2c2t").expect("spec grammar");
    let topo_cells: Vec<WorkloadKind> = vec![
        small_metbench(),
        WorkloadKind::MetBenchVar(workloads::metbenchvar::MetBenchVarConfig {
            base: MetBenchConfig {
                loads: vec![0.05, 0.2, 0.05, 0.2],
                iterations: 9,
                ..Default::default()
            },
            k: 3,
        }),
        WorkloadKind::BtMz(workloads::btmz::BtMzConfig {
            iterations: 6,
            ..Default::default()
        }),
        WorkloadKind::Siesta(workloads::siesta::SiestaConfig {
            iterations: 3,
            rounds: 10,
            ..Default::default()
        }),
    ];
    for cell in &topo_cells {
        for mode in all_modes {
            let r = run_on(cell, mode, SEED, Some(&numa));
            let clean = r.conformance.is_clean();
            println!(
                "{:<12} {:<10} {}",
                cell.name(),
                mode.label(),
                if clean { "clean" } else { "VIOLATIONS" }
            );
            if !clean {
                println!("{}", r.conformance.render().trim_end());
                failed = true;
            }
        }
    }

    println!("\n== topology: policy zoo on the NUMA tree stays clean and deterministic ==");
    for spec in schedsim::policies::registry() {
        let mode = ExperimentMode::Policy(spec.name);
        let det = simverify::determinism::check(|| run_on(&wl, mode, SEED, Some(&numa)).records);
        let r = run_on(&wl, mode, SEED, Some(&numa));
        let clean = r.conformance.is_clean();
        println!(
            "{:<12} {} {}",
            spec.name,
            if clean { "clean" } else { "VIOLATIONS" },
            match &det {
                Ok(n) => format!("deterministic ({n} records)"),
                Err(_) => "NONDETERMINISTIC".to_string(),
            }
        );
        if !clean {
            println!("{}", r.conformance.render().trim_end());
            failed = true;
        }
        if let Err(d) = det {
            println!("{d}");
            failed = true;
        }
    }

    println!("\n== topology: mixed fleet batch — serial vs {par_threads} threads byte-identity ==");
    let hetero_stream = heavy_light_mix(SEED, 24);
    for discipline in Discipline::ALL {
        let cfg = BatchConfig {
            discipline,
            shape: FleetShape::Mixed,
            threads: 1,
            ..Default::default()
        };
        let serial = run_batch(&hetero_stream, &cfg, None);
        let par = run_batch(&hetero_stream, &BatchConfig { threads: par_threads, ..cfg }, None);
        let trace_ok = simverify::determinism::check_identical(
            "trace",
            &serial.render_trace(),
            &par.render_trace(),
        );
        match trace_ok {
            Ok(n) => println!("{:<10} trace identical ({n} events)", discipline.label()),
            Err(d) => {
                println!("{:<10} PARALLEL DIVERGENCE\n{d}", discipline.label());
                failed = true;
            }
        }
        if serial.metrics != par.metrics {
            println!("{:<10} PARALLEL DIVERGENCE (metrics snapshots differ)", discipline.label());
            failed = true;
        }
    }

    println!("\n== topology: mixed-fleet checkpoint resumes byte-identically ==");
    {
        let cfg = BatchConfig {
            discipline: Discipline::Easy,
            shape: FleetShape::Mixed,
            ..Default::default()
        };
        let full = run_batch(&hetero_stream, &cfg, None);
        match run_batch_until(&hetero_stream, &cfg, None, 12) {
            Some(ckpt) => {
                let ckpt =
                    BatchCheckpoint::decode(&ckpt.encode()).expect("shape survives the wire");
                let resumed = resume_batch(&ckpt);
                if resumed.render_trace() == full.render_trace()
                    && resumed.metrics == full.metrics
                {
                    println!("easy       resume identical ({} jobs)", full.jobs.len());
                } else {
                    println!("easy       CHECKPOINT RESUME DIVERGED from the full run");
                    failed = true;
                }
            }
            None => {
                println!("easy       checkpoint cut not found");
                failed = true;
            }
        }
    }

    let bench_json = serde_json::to_string_pretty(&bench).expect("bench serializes");
    match std::fs::write("BENCH_faults.json", &bench_json) {
        Ok(()) => println!("\nfault baseline written to BENCH_faults.json"),
        Err(e) => println!("\nwarning: could not write BENCH_faults.json: {e}"),
    }

    if failed {
        eprintln!("verify: FAILED");
        std::process::exit(1);
    }
    println!("\nverify: OK");
}
