//! CI verification harness: conformance-check a small seeded MetBench run
//! under every scheduler mode, then prove determinism by running the
//! dynamic heuristics twice with one seed and comparing traces
//! record-by-record. Exits nonzero on any violation or divergence.

use experiments::runner::{run, ExperimentMode, WorkloadKind};
use workloads::metbench::MetBenchConfig;

fn small_metbench() -> WorkloadKind {
    WorkloadKind::MetBench(MetBenchConfig {
        loads: vec![0.05, 0.2, 0.05, 0.2],
        iterations: 6,
        ..Default::default()
    })
}

fn main() {
    const SEED: u64 = 2008;
    let wl = small_metbench();
    let mut failed = false;

    println!("== conformance: MetBench (4 ranks, 6 iterations, seed {SEED}) ==");
    let all_modes = [
        ExperimentMode::Baseline,
        ExperimentMode::Static,
        ExperimentMode::Uniform,
        ExperimentMode::Adaptive,
        ExperimentMode::Hybrid,
    ];
    for mode in all_modes {
        let r = run(&wl, mode, SEED);
        println!("{:<10} {}", mode.label(), r.conformance.render().trim_end());
        failed |= !r.conformance.is_clean();
    }

    println!("\n== determinism: identical (config, seed) => identical trace ==");
    for mode in [ExperimentMode::Uniform, ExperimentMode::Adaptive] {
        match simverify::determinism::check(|| run(&wl, mode, SEED).records) {
            Ok(n) => println!("{:<10} deterministic ({n} records)", mode.label()),
            Err(d) => {
                println!("{:<10} NONDETERMINISTIC\n{d}", mode.label());
                failed = true;
            }
        }
    }

    if failed {
        eprintln!("verify: FAILED");
        std::process::exit(1);
    }
    println!("\nverify: OK");
}
