//! Paper Figure 1: scheduling classes of the standard and modified kernel.

fn main() {
    println!("Figure 1(a) — standard Linux scheduling classes\n");
    println!("  [RT class]  ->  [CFS class]   ->  [Idle class]");
    println!("  SCHED_FIFO      SCHED_NORMAL      SCHED_IDLE");
    println!("  SCHED_RR        SCHED_BATCH\n");
    println!("Figure 1(b) — HPCSched scheduling classes\n");
    println!("  [RT class]  ->  [HPC class]  ->  [CFS class]   ->  [Idle class]");
    println!("  SCHED_FIFO      SCHED_HPC        SCHED_NORMAL      SCHED_IDLE");
    println!("  SCHED_RR                         SCHED_BATCH\n");
    println!("The class walk is strict: no task of a lower class runs while a");
    println!("higher class has runnable tasks, preserving real-time semantics");
    println!("and giving HPC processes priority over normal tasks (paper IV).");
    experiments::cli::CliFlags::from_env().note_no_kernel();
}
