//! Evaluation of the Hybrid heuristic — this reproduction's implementation
//! of the paper's future-work item (§VI): "find an heuristic capable of
//! performing well (even if not optimal) for both constant and dynamic
//! applications".
//!
//! Runs all four applications under Uniform, Adaptive and Hybrid and
//! reports whether Hybrid stays competitive with the better of the two on
//! each.

use experiments::cli::CliFlags;
use experiments::runner::run_modes_on;
use experiments::{ExperimentMode, WorkloadKind};

fn main() {
    let flags = CliFlags::from_env();
    let modes = [
        ExperimentMode::Baseline,
        ExperimentMode::Uniform,
        ExperimentMode::Adaptive,
        ExperimentMode::Hybrid,
    ];
    let cells: Vec<WorkloadKind> = vec![
        WorkloadKind::MetBench(Default::default()),
        WorkloadKind::MetBenchVar(Default::default()),
        WorkloadKind::BtMz(Default::default()),
        WorkloadKind::Siesta(Default::default()),
    ];

    println!("Hybrid heuristic evaluation (paper \u{a7}VI future work)\n");
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>10}   verdict",
        "workload", "baseline", "uniform", "adaptive", "hybrid"
    );

    let mut hybrid_ok = true;
    for wl in &cells {
        let results = run_modes_on(wl, &modes, 2008, flags.topology.as_ref());
        flags.epilogue(&results);
        let secs: Vec<f64> = results.iter().map(|r| r.exec_secs).collect();
        let (base, unif, adapt, hybrid) = (secs[0], secs[1], secs[2], secs[3]);
        let best = unif.min(adapt);
        // "Performing well, even if not optimal": within 3% of the better
        // built-in heuristic.
        let ok = hybrid <= best * 1.03;
        hybrid_ok &= ok;
        println!(
            "{:<12} {:>9.2}s {:>9.2}s {:>9.2}s {:>9.2}s   {}",
            wl.name(),
            base,
            unif,
            adapt,
            hybrid,
            if ok { "within 3% of best" } else { "FALLS SHORT" }
        );
    }

    println!();
    if hybrid_ok {
        println!(
            "Hybrid is competitive everywhere: it anneals from last-iteration\n\
             judgement (young history, after behaviour changes) to global\n\
             judgement (mature history) — one knob, both application classes."
        );
    } else {
        println!("Hybrid fell short on at least one workload — see rows above.");
        std::process::exit(1);
    }
}
