//! Paper Table I: decode cycles assigned to tasks based on their
//! priorities — demonstrated with the slot-accurate arbiter, not assumed.

use experiments::paper::TABLE1;
use power5::decode::SlotArbiter;
use power5::HwPriority;

fn main() {
    println!("Table I — decode cycles per arbitration window R = 2^(|d|+1)\n");
    println!("{:>10} {:>4} {:>16} {:>16}  paper(high,low)", "prio diff", "R", "decode cycles A", "decode cycles B");
    for &(d, paper_r, paper_high, paper_low) in TABLE1 {
        // Pick a regular-priority pair with the requested difference.
        let (a, b) = match d {
            0 => (4u8, 4u8),
            1 => (5, 4),
            2 => (6, 4),
            3 => (6, 3),
            4 => (6, 2),
            _ => (2, 6), // measured symmetric: B is the favoured side
        };
        // diff 5 is not reachable inside 2..=6 with A favoured; use (6,2)+swap semantics.
        let (pa, pb) = if d == 5 { (6u8, 2u8) } else { (a, b) };
        let mut arb = SlotArbiter::new(
            HwPriority::new(pa).unwrap(),
            HwPriority::new(pb).unwrap(),
        );
        let r = arb.window() as u64;
        let (ca, cb) = arb.run(r);
        let note = if d == 5 { " (diff 4 max within supervisor range 2-6; d=5 shown per formula)" } else { "" };
        if d == 5 {
            // The architected window for d = 5 (e.g. priorities 7 vs 2) —
            // verified against the closed form since 7 bypasses windowed
            // arbitration on real silicon.
            let r = power5::decode_interval(5);
            println!("{:>10} {:>4} {:>16} {:>16}  ({},{}){}", d, r, r - 1, 1, paper_high, paper_low, note);
            continue;
        }
        assert_eq!(r as u32, paper_r, "window size matches paper");
        assert_eq!((ca as u32, cb as u32), (paper_high, paper_low), "cycle split matches paper");
        println!("{:>10} {:>4} {:>16} {:>16}  ({},{})", d, r, ca, cb, paper_high, paper_low);
    }
    println!("\nAll measured windows match paper Table I.");
    experiments::cli::CliFlags::from_env().note_no_kernel();
}
