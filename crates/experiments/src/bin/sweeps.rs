//! Tunable sweeps: how sensitive is the result to the knobs the paper
//! exposes through sysfs? Sweeps HIGH_UTIL/LOW_UTIL bounds, the Adaptive
//! G/L weights and the priority range on MetBench and MetBenchVar.

use hpcsched::{HeuristicKind, HpcTunables};
use schedsim::builder::HpcSchedConfig;
use schedsim::KernelBuilder;
use schedsim::SchedError;
use simcore::SimDuration;
use workloads::metbench::{self, MetBenchConfig};
use workloads::metbenchvar::{self, MetBenchVarConfig};
use workloads::SchedulerSetup;

fn run_metbench(tunables: HpcTunables, heuristic: HeuristicKind) -> Result<f64, SchedError> {
    let cfg = MetBenchConfig {
        loads: vec![0.109, 0.436, 0.109, 0.436], // 1/5-scale paper loads
        iterations: 30,
        ..Default::default()
    };
    let mut kernel = KernelBuilder::new()
        .hpc_config(HpcSchedConfig { heuristic, tunables, ..Default::default() })
        .try_build()?;
    let (workers, master) = metbench::spawn(&mut kernel, &cfg, &SchedulerSetup::Hpc);
    let mut all = workers;
    all.push(master);
    Ok(kernel.run_until_exited(&all, SimDuration::from_secs(600)).expect("finishes").as_secs_f64())
}

fn run_metbenchvar(tunables: HpcTunables, heuristic: HeuristicKind) -> Result<f64, SchedError> {
    let cfg = MetBenchVarConfig {
        base: MetBenchConfig {
            loads: vec![0.327, 1.309, 0.327, 1.309], // 1/5-scale paper loads
            iterations: 45,
            ..Default::default()
        },
        k: 15,
    };
    let mut kernel = KernelBuilder::new()
        .hpc_config(HpcSchedConfig { heuristic, tunables, ..Default::default() })
        .try_build()?;
    let (workers, master) = metbenchvar::spawn(&mut kernel, &cfg, &SchedulerSetup::Hpc);
    let mut all = workers;
    all.push(master);
    Ok(kernel.run_until_exited(&all, SimDuration::from_secs(2000)).expect("finishes").as_secs_f64())
}

/// Format a sweep point: seconds, or the builder's rejection for an
/// invalid tunable combination (the sweep keeps going either way).
fn fmt(res: Result<f64, SchedError>) -> String {
    match res {
        Ok(secs) => format!("{secs:.3}s"),
        Err(e) => format!("rejected: {e}"),
    }
}

fn main() {
    println!("== HIGH_UTIL sweep (MetBench, Uniform; paper default 85) ==");
    for high in [70.0, 80.0, 85.0, 90.0, 95.0, 99.0] {
        let t = HpcTunables { high_util: high, ..Default::default() };
        println!("  HIGH_UTIL={high:>5}: {}", fmt(run_metbench(t, HeuristicKind::Uniform)));
    }

    println!("\n== LOW_UTIL sweep (MetBench, Uniform; paper default 65) ==");
    for low in [30.0, 50.0, 65.0, 80.0] {
        let t = HpcTunables { low_util: low, ..Default::default() };
        println!("  LOW_UTIL={low:>5}: {}", fmt(run_metbench(t, HeuristicKind::Uniform)));
    }

    println!("\n== Adaptive G weight sweep (MetBenchVar; paper default G=0.1) ==");
    for g in [0.0, 0.1, 0.3, 0.5, 0.7, 0.9] {
        let mut t = HpcTunables::default();
        t.set_weights(g);
        println!("  G={g:.1} L={:.1}: {}", 1.0 - g, fmt(run_metbenchvar(t, HeuristicKind::Adaptive)));
    }

    println!("\n== Priority range sweep (MetBench, Uniform; paper uses [4,6]) ==");
    for max in [4u8, 5, 6] {
        let mut t = HpcTunables::default();
        t.set("max_prio", &max.to_string()).unwrap();
        println!("  range [4,{max}]: {}", fmt(run_metbench(t, HeuristicKind::Uniform)));
    }

    println!("\n== Balance-spread sweep (MetBench, Uniform; default 10) ==");
    for spread in [2.0, 5.0, 10.0, 20.0, 40.0] {
        let t = HpcTunables { balance_spread: spread, ..Default::default() };
        println!("  spread={spread:>4}: {}", fmt(run_metbench(t, HeuristicKind::Uniform)));
    }

    println!(
        "\nShapes to expect: HIGH_UTIL is flat between ~70 and ~95 (the gate\n\
         freezes a balanced app either way) and degrades at 99+ (boost never\n\
         triggers); [4,4] disables balancing entirely, [4,5] buys roughly half\n\
         of [4,6]'s improvement; tiny balance spreads re-open the gate on\n\
         measurement noise and churn priorities."
    );

    if experiments::cli::CliFlags::from_env().telemetry {
        // Kernel metrics for one representative cell (paper-default
        // MetBench under Uniform).
        let wl = experiments::WorkloadKind::MetBench(Default::default());
        let r = experiments::run(&wl, experiments::ExperimentMode::Uniform, 2008);
        print!("{}", experiments::report::telemetry_report(std::slice::from_ref(&r)));
    }
}
