//! Paper Table II: privilege level and or-nop encoding per priority level.

use power5::priority::issue_or_nop;
use power5::{HwPriority, PrivilegeLevel};

fn main() {
    println!("Table II — priority levels, privileges and or-nop encodings\n");
    println!("{:>8}  {:<12} {:<11} {:<12} settable by {{user, supervisor, hypervisor}}", "Priority", "Level", "Privilege", "or-nop");
    for v in 0..=7u8 {
        let p = HwPriority::new(v).unwrap();
        let ornop = p
            .or_nop_register()
            .map(|r| format!("or {r},{r},{r}"))
            .unwrap_or_else(|| "-".to_string());
        let can = |lvl| issue_or_nop(p, lvl).is_ok();
        println!(
            "{:>8}  {:<12} {:<11} {:<12} {{{}, {}, {}}}",
            v,
            p.level_name(),
            format!("{:?}", p.required_privilege()),
            ornop,
            can(PrivilegeLevel::User),
            can(PrivilegeLevel::Supervisor),
            can(PrivilegeLevel::Hypervisor),
        );
    }
    println!("\nNote: priority 0 (thread off) has no or-nop encoding; the\nhypervisor switches threads off through the thread-control facility.");
    experiments::cli::CliFlags::from_env().note_no_kernel();
}
