//! Cluster-level gang scheduling — the paper's future-work direction
//! (§VI): assign groups of tasks to nodes knowing the local HPCSched can
//! dynamically rebalance inside each node.
//!
//! Compares three placement strategies × two local schedulers on skewed
//! SPMD jobs. Expected shape: (1) HPCSched nodes beat CFS nodes under any
//! placement; (2) the SMT-aware placement — which deliberately pairs heavy
//! and light ranks on SMT siblings because the hardware-priority boost can
//! exploit exactly that — matches or beats classic load-oblivious and
//! load-balancing placements.

use cluster::{run_cluster, ClusterConfig, JobSpec, PlacementStrategy};
use simcore::SimRng;

fn main() {
    let strategies = [
        PlacementStrategy::RoundRobin,
        PlacementStrategy::GreedyLpt,
        PlacementStrategy::SmtAware,
    ];

    // Job 1: bimodal — two heavy solver ranks among light halo ranks.
    let bimodal = JobSpec::new(
        "bimodal",
        vec![0.40, 0.40, 0.10, 0.10, 0.10, 0.10, 0.10, 0.10],
        20,
    );
    // Job 2: irregular mesh partition (random, deterministic seed).
    let mut rng = SimRng::seed_from_u64(7);
    let irregular = JobSpec::random("irregular", 16, 15, &mut rng);

    for (job, nodes) in [(&bimodal, 2usize), (&irregular, 4)] {
        println!(
            "== job {:<10} ranks={} nodes={nodes} imbalance={:.1}x ==",
            job.name,
            job.ranks(),
            job.imbalance()
        );
        println!(
            "{:<12} {:>14} {:>14} {:>12}",
            "placement", "CFS nodes (s)", "HPC nodes (s)", "HPC gain"
        );
        for s in strategies {
            let cfs = run_cluster(
                job,
                s,
                &ClusterConfig { num_nodes: nodes, hpcsched_nodes: false, ..Default::default() },
            )
            .expect("demo jobs fit their clusters");
            let hpc = run_cluster(
                job,
                s,
                &ClusterConfig { num_nodes: nodes, hpcsched_nodes: true, ..Default::default() },
            )
            .expect("demo jobs fit their clusters");
            println!(
                "{:<12} {:>14.3} {:>14.3} {:>11.1}%",
                format!("{s:?}"),
                cfs.makespan,
                hpc.makespan,
                100.0 * (cfs.makespan - hpc.makespan) / cfs.makespan
            );
        }
        println!();
    }
    println!(
        "The SMT-aware gang scheduler and the local HPCSched compose: the\n\
         placement engineers per-core imbalance that the hardware priorities\n\
         then absorb — the coordination the paper's future work envisions."
    );
    if std::env::args().any(|a| a == "--telemetry") {
        println!(
            "\n(--telemetry: node kernels run inside the cluster crate and are\n\
             not exposed here; use the single-node binaries — metbench, btmz,\n\
             siesta — for kernel telemetry)"
        );
    }
}
