//! Cluster-level gang scheduling — the paper's future-work direction
//! (§VI): assign groups of tasks to nodes knowing the local HPCSched can
//! dynamically rebalance inside each node.
//!
//! The demo jobs are submitted as a tiny FCFS stream through `batchsim`
//! (the two-level batch layer); each gang is placed with the chosen
//! strategy and runs one simulated kernel per node. Expected shape:
//! (1) HPCSched nodes beat CFS nodes under any placement; (2) the
//! SMT-aware placement — which deliberately pairs heavy and light ranks
//! on SMT siblings because the hardware-priority boost can exploit
//! exactly that — matches or beats classic load-oblivious and
//! load-balancing placements.

use batchsim::{run_batch, BatchConfig, BatchJob, Discipline, FleetStats};
use cluster::{JobSpec, LocalSched, PlacementStrategy};
use experiments::cli::CliFlags;
use simcore::SimRng;

/// One FCFS batch of the demo jobs on a `nodes`-node fleet; per-node
/// kernel runs fan out over `threads` pool workers (output is identical
/// at any count).
fn run_fcfs(
    jobs: &[BatchJob],
    nodes: usize,
    strategy: PlacementStrategy,
    sched: LocalSched,
    threads: usize,
) -> batchsim::BatchOutcome {
    let cfg = BatchConfig {
        num_nodes: nodes,
        discipline: Discipline::Fcfs,
        sched,
        placement: strategy,
        threads,
        ..Default::default()
    };
    run_batch(jobs, &cfg, None)
}

fn main() {
    let flags = CliFlags::from_env();
    // `--policy` swaps the balanced side of the comparison from the
    // paper's HPCSched onto the named zoo policy.
    let balanced = flags.policy.map_or(LocalSched::Hpc, LocalSched::Policy);
    let strategies = [
        PlacementStrategy::RoundRobin,
        PlacementStrategy::GreedyLpt,
        PlacementStrategy::SmtAware,
    ];

    // Job 1: bimodal — two heavy solver ranks among light halo ranks.
    let bimodal = JobSpec::new(
        "bimodal",
        vec![0.40, 0.40, 0.10, 0.10, 0.10, 0.10, 0.10, 0.10],
        20,
    );
    // Job 2: irregular mesh partition (random, deterministic seed).
    let mut rng = SimRng::seed_from_u64(7);
    let irregular = JobSpec::random("irregular", 16, 15, &mut rng);

    for (job, nodes) in [(&bimodal, 2usize), (&irregular, 4)] {
        println!(
            "== job {:<10} ranks={} nodes={nodes} imbalance={:.1}x ==",
            job.name,
            job.ranks(),
            job.imbalance()
        );
        println!(
            "{:<12} {:>14} {:>14} {:>12}",
            "placement",
            "CFS nodes (s)",
            format!("{} nodes (s)", balanced.label()),
            "gain"
        );
        let stream = [BatchJob::new(0, job.clone(), 0.01)];
        for s in strategies {
            let cfs = run_fcfs(&stream, nodes, s, LocalSched::Cfs, flags.threads);
            let hpc = run_fcfs(&stream, nodes, s, balanced, flags.threads);
            let (cfs, hpc) =
                (cfs.jobs[0].outcome.result.makespan, hpc.jobs[0].outcome.result.makespan);
            println!(
                "{:<12} {:>14.3} {:>14.3} {:>11.1}%",
                format!("{s:?}"),
                cfs,
                hpc,
                100.0 * (cfs - hpc) / cfs
            );
        }
        println!();
    }

    // Both jobs through one queue: the bimodal gang holds 2 of 4 nodes
    // while the irregular gang (4 nodes wide) waits behind it — the
    // batch layer's wait/turnaround accounting on a toy stream.
    let stream =
        vec![BatchJob::new(0, bimodal, 0.01), BatchJob::new(1, irregular, 0.02)];
    let out = run_fcfs(&stream, 4, PlacementStrategy::SmtAware, balanced, flags.threads);
    let stats = FleetStats::from_outcome(&out);
    println!("== both jobs, one FCFS queue (4 nodes, SmtAware, HPCSched) ==");
    println!("{}", stats.render_row("fcfs"));

    println!(
        "\nThe SMT-aware gang scheduler and the local HPCSched compose: the\n\
         placement engineers per-core imbalance that the hardware priorities\n\
         then absorb — the coordination the paper's future work envisions.\n\
         The `batch` binary runs the full two-level study (disciplines,\n\
         arrival streams, node failures)."
    );
    if flags.telemetry {
        println!("--- telemetry: batch / fcfs ---");
        println!("{}", telemetry::export::snapshot_summary(&out.metrics));
    }
}
