//! Scheduler-latency study (supplements §V-D): wakeup→dispatch latency of
//! the application's ranks under CFS vs SCHED_HPC across noise levels.
//! The HPC class's near-constant microsecond latency is the
//! "high-responsive task scheduler" half of the paper's SIESTA result.

use schedsim::KernelBuilder;
use schedsim::{Kernel, NoiseConfig, TaskId};
use simcore::SimDuration;
use workloads::siesta::{self, SiestaConfig};
use workloads::SchedulerSetup;

struct LatencyReport {
    /// Mean latency of application ranks (µs).
    app_mean_us: f64,
    /// Worst per-rank mean among application ranks (µs).
    app_worst_mean_us: f64,
    /// Mean latency of the background daemons (µs).
    daemon_mean_us: f64,
    exec_secs: f64,
    /// End-of-run kernel metrics (for `--telemetry`).
    metrics: telemetry::MetricsSnapshot,
}

fn mean_of(kernel: &Kernel, tasks: impl Iterator<Item = TaskId>) -> f64 {
    let (sum, n) = tasks.fold((0.0f64, 0u64), |(s, n), t| {
        let task = kernel.task(t);
        (s + task.latency_total.as_nanos() as f64, n + task.latency_samples)
    });
    if n == 0 {
        0.0
    } else {
        sum / n as f64 / 1_000.0
    }
}

fn run(noise: NoiseConfig, hpc: bool) -> LatencyReport {
    let builder = KernelBuilder::new().noise(noise).seed(2008);
    let built = if hpc { builder.try_build() } else { builder.without_hpc_class().try_build() };
    let mut kernel = built.unwrap_or_else(|e| {
        eprintln!("invalid kernel configuration: {e}");
        std::process::exit(2);
    });
    let setup = if hpc { SchedulerSetup::Hpc } else { SchedulerSetup::Baseline };
    let cfg = SiestaConfig {
        rank_work: vec![0.47, 0.28, 0.14, 0.10],
        iterations: 8,
        rounds: 30,
        ..Default::default()
    };
    let ranks = siesta::spawn(&mut kernel, &cfg, &setup);
    let end = kernel.run_until_exited(&ranks, SimDuration::from_secs(600)).expect("finishes");

    let app_mean_us = mean_of(&kernel, ranks.iter().copied());
    let app_worst_mean_us = ranks
        .iter()
        .map(|&t| kernel.task(t).mean_latency().as_nanos() as f64 / 1_000.0)
        .fold(0.0, f64::max);
    let daemons: Vec<TaskId> = kernel
        .tasks()
        .iter()
        .filter(|t| t.name.starts_with("kdaemon"))
        .map(|t| t.id)
        .collect();
    let daemon_mean_us = mean_of(&kernel, daemons.into_iter());
    LatencyReport {
        app_mean_us,
        app_worst_mean_us,
        daemon_mean_us,
        exec_secs: end.as_secs_f64(),
        metrics: kernel.metrics_registry().snapshot(),
    }
}

fn main() {
    let flags = experiments::cli::CliFlags::from_env();
    println!("Wakeup→dispatch latency, SIESTA-like workload (microseconds)\n");
    println!(
        "{:<26} {:>10} {:>12} {:>14} {:>10}",
        "configuration", "app mean", "app worst", "daemon mean", "exec (s)"
    );
    for (label, noise) in [
        ("quiet", NoiseConfig::off()),
        ("light noise", NoiseConfig::light()),
        ("heavy noise", NoiseConfig::heavy()),
    ] {
        for hpc in [false, true] {
            let r = run(noise, hpc);
            println!(
                "{:<26} {:>10.2} {:>12.2} {:>14.1} {:>10.3}",
                format!("{} / {}", if hpc { "SCHED_HPC" } else { "CFS" }, label),
                r.app_mean_us,
                r.app_worst_mean_us,
                r.daemon_mean_us,
                r.exec_secs,
            );
            if flags.telemetry {
                println!(
                    "--- telemetry: {} / {} ---\n{}",
                    if hpc { "SCHED_HPC" } else { "CFS" },
                    label,
                    telemetry::export::snapshot_summary(&r.metrics)
                );
            }
        }
    }
    println!(
        "\nShape: the application's wakeup latency under SCHED_HPC stays at the\n\
         context-switch cost regardless of noise (class preemption), while\n\
         under CFS it grows with noise — and the cost is shifted onto the\n\
         daemons, which is exactly where the paper wants it."
    );
}
