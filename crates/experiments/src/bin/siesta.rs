//! Paper Table VI / Figure 6 — SIESTA.

use experiments::cli::CliFlags;
use experiments::paper::SIESTA;
use experiments::report::{report, save_outputs};
use experiments::runner::run_modes_faulted_on;
use experiments::{ExperimentMode, WorkloadKind};

fn main() {
    let wl = WorkloadKind::Siesta(Default::default());
    let flags = CliFlags::from_env();
    let modes =
        flags.modes(&[ExperimentMode::Baseline, ExperimentMode::Uniform, ExperimentMode::Adaptive]);
    let results =
        run_modes_faulted_on(&wl, &modes, 2008, flags.faults.as_ref(), flags.topology.as_ref());
    print!("{}", report("Table VI / Figure 6 — SIESTA", SIESTA, &results, true));
    flags.epilogue(&results);
    let dir = std::path::Path::new("experiments_output");
    if let Err(e) = save_outputs(dir, &flags.output_slug("siesta"), &results) {
        eprintln!("warning: could not save outputs: {e}");
    } else {
        println!("machine-readable outputs in {}", dir.display());
    }
}
