//! Paper Table VI / Figure 6 — SIESTA.

use experiments::paper::SIESTA;
use experiments::report::{
    faults_requested, maybe_print_faults, maybe_print_telemetry, maybe_verify, report, save_outputs,
};
use experiments::runner::run_modes_faulted;
use experiments::{ExperimentMode, WorkloadKind};

fn main() {
    let wl = WorkloadKind::Siesta(Default::default());
    let faults = faults_requested();
    let results = run_modes_faulted(
        &wl,
        &[ExperimentMode::Baseline, ExperimentMode::Uniform, ExperimentMode::Adaptive],
        2008,
        faults.as_ref(),
    );
    print!("{}", report("Table VI / Figure 6 — SIESTA", SIESTA, &results, true));
    maybe_print_faults(&results);
    maybe_print_telemetry(&results);
    maybe_verify(&results);
    let dir = std::path::Path::new("experiments_output");
    if let Err(e) = save_outputs(dir, "siesta", &results) {
        eprintln!("warning: could not save outputs: {e}");
    } else {
        println!("machine-readable outputs in {}", dir.display());
    }
}
