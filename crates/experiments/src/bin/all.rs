//! Run the full evaluation: every table and figure, with paper-vs-measured
//! summaries. Writes machine-readable outputs to `experiments_output/`.

use experiments::cli::CliFlags;
use experiments::paper::{BTMZ, METBENCH, METBENCHVAR, SIESTA};
use experiments::report::{report, save_outputs};
use experiments::runner::run_modes_on;
use experiments::{ExperimentMode, WorkloadKind};

fn main() {
    let flags = CliFlags::from_env();
    let dir = std::path::Path::new("experiments_output");
    let all = ExperimentMode::ALL;
    let no_static =
        [ExperimentMode::Baseline, ExperimentMode::Uniform, ExperimentMode::Adaptive];

    let cells: Vec<(&str, WorkloadKind, &[ExperimentMode], _)> = vec![
        ("metbench", WorkloadKind::MetBench(Default::default()), &all[..], METBENCH),
        ("metbenchvar", WorkloadKind::MetBenchVar(Default::default()), &all[..], METBENCHVAR),
        ("btmz", WorkloadKind::BtMz(Default::default()), &all[..], BTMZ),
        ("siesta", WorkloadKind::Siesta(Default::default()), &no_static[..], SIESTA),
    ];

    for (slug, wl, modes, paper) in cells {
        let results = run_modes_on(&wl, &flags.modes(modes), 2008, flags.topology.as_ref());
        let title = format!("{} (paper vs measured)", wl.name());
        print!("{}", report(&title, paper, &results, false));
        flags.epilogue(&results);
        if let Err(e) = save_outputs(dir, &flags.output_slug(slug), &results) {
            eprintln!("warning: could not save outputs for {slug}: {e}");
        }
    }
    println!("Done. Machine-readable outputs in {}.", dir.display());
    println!("Run the per-experiment binaries (metbench, btmz, ...) for the ASCII trace figures.");
}
