//! Fleet-scale batch study: the million-job trajectory of the `fleetsim`
//! subsystem (DESIGN.md §15).
//!
//! Where the `batch` binary materialises a 200-job stream, this one
//! streams 10^4–10^6 jobs over a ≥1000-node fleet in O(1) memory per job:
//! lazy seeded arrivals, an interval-indexed EASY backfill pass, and
//! statistics folded into scalars/histograms as jobs retire. The tracked
//! figures — jobs per simulated second and honest peak RSS per scale —
//! land in the `fleet` section of `BENCH_batch.json`.
//!
//! Flags:
//! * default — one quick 10k-job fleet over 1000 nodes, serial, with the
//!   stats row and a resume self-check;
//! * `--smoke` — the CI scale gate: a 100k-job stream run serially and at
//!   8 worker threads, requiring byte-identical trace fingerprints;
//! * `--scale` — the full trajectory: 10k/100k/1M jobs, each measured in
//!   a fresh child process (so `VmHWM` is that run's own high-water mark,
//!   not an earlier row's) at 1 and 8 threads, hashes cross-checked, rows
//!   upserted into `BENCH_batch.json`;
//! * `--scale-row` — internal: run one row in this process and print it
//!   as a single JSON line (spawned by `--scale`);
//! * `--check-bench` — validate the committed `fleet` section: rows at
//!   every scale, positive throughput and RSS figures, thread-count pairs
//!   with identical hashes;
//! * `--jobs N` / `--nodes N` / `--seed N` / `--threads N` — overrides.

use std::time::Instant;

use experiments::benchfile;
use experiments::cli::{self, CliFlags};
use fleetsim::{run_fleet, run_fleet_until, resume_fleet, scaled_config, FleetOutcome};

/// The scale trajectory `--scale` measures and `--check-bench` requires.
const SCALES: [u64; 3] = [10_000, 100_000, 1_000_000];

/// Thread counts every scale is cross-checked at.
const THREAD_PAIR: [usize; 2] = [1, 8];

/// One row of the `fleet` section of `BENCH_batch.json`. Deterministic
/// fields (`completed` … `trace_hash`) are identical at every thread
/// count; `wall_secs`, `jobs_per_wall_sec` and `peak_rss_bytes` are host
/// measurements and excluded from CI baseline diffs.
#[derive(Clone, serde::Serialize, serde::Deserialize)]
struct FleetBenchRow {
    jobs: u64,
    nodes: u64,
    discipline: String,
    seed: u64,
    threads: u64,
    completed: u64,
    degraded: u64,
    makespan_sim_secs: f64,
    /// Jobs completed per simulated second — the deterministic figure.
    jobs_per_sim_sec: f64,
    wall_secs: f64,
    jobs_per_wall_sec: f64,
    /// `VmHWM` of the process that ran this row, bytes.
    peak_rss_bytes: u64,
    /// FNV-1a fingerprint of the rendered event trace, 16 hex digits.
    trace_hash: String,
}

/// This process's peak resident set (`VmHWM` from `/proc/self/status`),
/// in bytes; 0 where the proc interface is unavailable.
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

fn run_row(jobs: u64, nodes: usize, seed: u64, threads: usize) -> (FleetBenchRow, FleetOutcome) {
    let mut cfg = scaled_config(jobs, nodes, seed);
    cfg.batch.threads = threads;
    let t0 = Instant::now();
    let out = run_fleet(&cfg);
    let wall = t0.elapsed().as_secs_f64();
    let row = FleetBenchRow {
        jobs,
        nodes: nodes as u64,
        discipline: cfg.batch.discipline.label().to_string(),
        seed,
        threads: threads as u64,
        completed: out.accum.completed,
        degraded: out.accum.degraded,
        makespan_sim_secs: out.makespan,
        jobs_per_sim_sec: if out.makespan > 0.0 {
            out.accum.completed as f64 / out.makespan
        } else {
            0.0
        },
        wall_secs: wall,
        jobs_per_wall_sec: if wall > 0.0 { out.accum.jobs as f64 / wall } else { 0.0 },
        peak_rss_bytes: peak_rss_bytes(),
        trace_hash: format!("{:016x}", out.trace_hash),
    };
    (row, out)
}

fn render_row(r: &FleetBenchRow) {
    println!(
        "fleet {:>9} jobs x {:>4} nodes t{} | done {:>9} degr {:>3} | {:>10.1} jobs/sim-s \
         {:>9.0} jobs/wall-s | rss {:>7.1} MiB | hash {}",
        r.jobs,
        r.nodes,
        r.threads,
        r.completed,
        r.degraded,
        r.jobs_per_sim_sec,
        r.jobs_per_wall_sec,
        r.peak_rss_bytes as f64 / (1024.0 * 1024.0),
        r.trace_hash,
    );
}

/// Spawn this binary again for one `--scale-row`, so the child's `VmHWM`
/// measures exactly that run.
fn spawn_row(jobs: u64, nodes: usize, seed: u64, threads: usize) -> Result<FleetBenchRow, String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let out = std::process::Command::new(exe)
        .args([
            "--scale-row",
            "--jobs",
            &jobs.to_string(),
            "--nodes",
            &nodes.to_string(),
            "--seed",
            &seed.to_string(),
            "--threads",
            &threads.to_string(),
        ])
        .output()
        .map_err(|e| format!("spawn --scale-row: {e}"))?;
    if !out.status.success() {
        return Err(format!(
            "--scale-row jobs={jobs} threads={threads} exited {}: {}",
            out.status,
            String::from_utf8_lossy(&out.stderr)
        ));
    }
    let stdout = String::from_utf8_lossy(&out.stdout);
    let line = stdout
        .lines()
        .find(|l| l.starts_with('{'))
        .ok_or_else(|| format!("--scale-row jobs={jobs}: no JSON row on stdout"))?;
    serde_json::from_str::<FleetBenchRow>(line)
        .map_err(|e| format!("--scale-row jobs={jobs}: bad row: {e}"))
}

/// Schema/consistency check over the committed `fleet` rows — the CI
/// guard that the baseline actually records the trajectory.
fn check_bench() -> Result<(), String> {
    let rows: Vec<FleetBenchRow> = benchfile::read_section("BENCH_batch.json", "fleet")
        .ok_or("BENCH_batch.json has no fleet section")?;
    for &jobs in &SCALES {
        let at: Vec<&FleetBenchRow> = rows.iter().filter(|r| r.jobs == jobs).collect();
        if at.is_empty() {
            return Err(format!("no fleet row at {jobs} jobs"));
        }
        for r in &at {
            if r.jobs_per_sim_sec <= 0.0 {
                return Err(format!("{jobs} jobs t{}: jobs_per_sim_sec not positive", r.threads));
            }
            if r.peak_rss_bytes == 0 {
                return Err(format!("{jobs} jobs t{}: peak_rss_bytes missing", r.threads));
            }
            if r.nodes < 1000 {
                return Err(format!("{jobs} jobs t{}: fewer than 1000 nodes", r.threads));
            }
            if r.trace_hash.len() != 16 || !r.trace_hash.bytes().all(|b| b.is_ascii_hexdigit()) {
                return Err(format!("{jobs} jobs t{}: malformed trace_hash", r.threads));
            }
        }
        if at.iter().any(|r| r.trace_hash != at[0].trace_hash) {
            return Err(format!("{jobs} jobs: trace_hash differs across thread counts"));
        }
        if at.iter().any(|r| r.completed != at[0].completed) {
            return Err(format!("{jobs} jobs: completed differs across thread counts"));
        }
    }
    println!(
        "check-bench: {} fleet rows, scales {:?}, thread-pair hashes identical",
        rows.len(),
        SCALES
    );
    Ok(())
}

/// Checkpoint/resume self-check: cut a fleet run mid-stream, resume it,
/// and require the finished fingerprint and accumulator to match the
/// uninterrupted run exactly.
fn resume_self_check(jobs: u64, nodes: usize, seed: u64) -> Result<(), String> {
    let cfg = scaled_config(jobs, nodes, seed);
    let whole = run_fleet(&cfg);
    let cut = (whole.trace_events / 2).max(1) as usize;
    let ckpt = run_fleet_until(&cfg, cut).ok_or("run finished before the checkpoint cut")?;
    let resumed = resume_fleet(&ckpt);
    if resumed.trace_hash != whole.trace_hash {
        return Err(format!(
            "resume diverged: {:016x} vs {:016x}",
            resumed.trace_hash, whole.trace_hash
        ));
    }
    if resumed.accum != whole.accum {
        return Err("resume accumulator differs from uninterrupted run".into());
    }
    println!(
        "resume: cut at event {cut}, resumed to identical hash {:016x} ({} jobs)",
        whole.trace_hash, whole.accum.jobs
    );
    Ok(())
}

fn main() {
    let flags = CliFlags::from_env();
    flags.note_no_kernel();
    let seed = cli::value_of("--seed").and_then(|s| s.parse().ok()).unwrap_or(2008);
    let nodes = cli::value_of("--nodes").and_then(|s| s.parse().ok()).unwrap_or(1000);

    if cli::flag("--scale-row") {
        let jobs = cli::value_of("--jobs").and_then(|s| s.parse().ok()).unwrap_or(10_000);
        let (row, _) = run_row(jobs, nodes, seed, flags.threads);
        println!("{}", serde_json::to_string(&row).expect("row serializes"));
        return;
    }

    if cli::flag("--check-bench") {
        if let Err(e) = check_bench() {
            eprintln!("fleet: check-bench FAILED: {e}");
            std::process::exit(1);
        }
        println!("\nfleet: OK");
        return;
    }

    if cli::flag("--smoke") {
        let jobs = cli::value_of("--jobs").and_then(|s| s.parse().ok()).unwrap_or(100_000);
        println!("== fleet smoke: {jobs} jobs x {nodes} nodes, serial vs 8 threads ==");
        let mut hashes = Vec::new();
        for threads in THREAD_PAIR {
            let (row, _) = run_row(jobs, nodes, seed, threads);
            render_row(&row);
            hashes.push(row.trace_hash.clone());
        }
        if hashes[0] != hashes[1] {
            eprintln!("fleet: smoke FAILED: serial {} != parallel {}", hashes[0], hashes[1]);
            std::process::exit(1);
        }
        println!("serial and 8-thread fingerprints identical: {}", hashes[0]);
        println!("\nfleet: OK");
        return;
    }

    if cli::flag("--scale") {
        println!("== fleet scale trajectory: {SCALES:?} jobs x {nodes} nodes ==");
        let mut rows = Vec::new();
        let mut failed = false;
        for jobs in SCALES {
            let mut pair = Vec::new();
            for threads in THREAD_PAIR {
                match spawn_row(jobs, nodes, seed, threads) {
                    Ok(row) => {
                        render_row(&row);
                        pair.push(row);
                    }
                    Err(e) => {
                        eprintln!("fleet: {e}");
                        failed = true;
                    }
                }
            }
            if pair.len() == 2 && pair[0].trace_hash != pair[1].trace_hash {
                eprintln!(
                    "fleet: {jobs} jobs: serial {} != parallel {}",
                    pair[0].trace_hash, pair[1].trace_hash
                );
                failed = true;
            }
            rows.extend(pair);
        }
        if failed {
            eprintln!("fleet: FAILED");
            std::process::exit(1);
        }
        match benchfile::upsert_section("BENCH_batch.json", "fleet", &rows) {
            Ok(()) => println!("fleet trajectory written to BENCH_batch.json"),
            Err(e) => println!("warning: could not write BENCH_batch.json: {e}"),
        }
        println!("\nfleet: OK");
        return;
    }

    // Default: one quick fleet plus the checkpoint/resume self-check.
    let jobs = cli::value_of("--jobs").and_then(|s| s.parse().ok()).unwrap_or(10_000);
    let (row, out) = run_row(jobs, nodes, seed, flags.threads);
    render_row(&row);
    println!("{}", out.stats.render_row("fleet/easy"));
    println!(
        "trace events {} | reservations {} | queue peak {}",
        out.trace_events, out.reservations, out.queue_peak
    );
    if flags.telemetry {
        println!("--- telemetry: fleet ---");
        println!("{}", telemetry::export::snapshot_summary(&out.metrics));
    }
    if let Err(e) = resume_self_check(2_000, nodes, seed) {
        eprintln!("fleet: resume self-check FAILED: {e}");
        std::process::exit(1);
    }
    println!("\nfleet: OK");
}
