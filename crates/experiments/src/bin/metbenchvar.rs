//! Paper Table IV / Figure 4 — MetBenchVar.

use experiments::paper::METBENCHVAR;
use experiments::report::{maybe_print_telemetry, maybe_verify, report, save_outputs};
use experiments::runner::run_modes;
use experiments::{ExperimentMode, WorkloadKind};

fn main() {
    let wl = WorkloadKind::MetBenchVar(Default::default());
    let results = run_modes(&wl, &ExperimentMode::ALL, 2008);
    print!("{}", report("Table IV / Figure 4 — MetBenchVar", METBENCHVAR, &results, true));
    maybe_print_telemetry(&results);
    maybe_verify(&results);
    let dir = std::path::Path::new("experiments_output");
    if let Err(e) = save_outputs(dir, "metbenchvar", &results) {
        eprintln!("warning: could not save outputs: {e}");
    } else {
        println!("machine-readable outputs in {}", dir.display());
    }
}
