//! Two-level batch scheduling study: a seeded job stream through the
//! `batchsim` queue (FCFS / SJF / EASY backfill), each admitted gang
//! placed on the fleet and run by one simulated HPCSched kernel per node.
//!
//! The default run drives a 200-job heavy/light mix under all three
//! disciplines, proves determinism (byte-identical event traces across two
//! serial runs *and* against a parallel run), requires EASY to strictly
//! beat FCFS on mean wait, and writes the throughput baseline to
//! `BENCH_batch.json`.
//!
//! Flags:
//! * `--jobs N` / `--seed N` — stream length and seed (default 200 / 2008);
//! * `--smoke` — short stream under 3 disciplines x 3 local scheduler
//!   modes with per-job kernel conformance (C001–C005) checked;
//! * `--faults <spec>` — inject a fault plan into the queued system:
//!   `nodefail:` kills a fleet node, `taskabort:` panics node kernels for
//!   the supervisor's retry/quarantine path to absorb, `ckptcorrupt:`
//!   tears a checkpoint save so recovery exercises the fallback;
//! * `--threads N` — per-node kernel runs on N pool workers (default 1;
//!   the study always cross-checks serial vs. parallel byte-identity);
//! * `--watchdog-ms N` — per-attempt wall-clock watchdog on node kernels;
//! * `--checkpoint <dir>` — run one EASY stream with periodic checkpoints
//!   rotated into `<dir>` (cadence `--ckpt-events N` / `--ckpt-jobs N`);
//! * `--resume <path>` — continue a saved checkpoint (a file, or a
//!   `--checkpoint` dir to pick the newest usable generation) and print
//!   the completed run's trace hash;
//! * `--ckpt-smoke` — crash/resume self-test: checkpoint every discipline
//!   at several cuts, reload through the store (honoring `ckptcorrupt:`),
//!   and require the resumed traces to be byte-identical;
//! * `--fleet-shape <spec>` — run the fleet on non-reference hardware:
//!   `uniform` (default; the reference OpenPower 710 node), a topology
//!   preset (`2-socket`, `numa`, `wide-smt`), or `mixed` (a heterogeneous
//!   fleet cycling NUMA / wide-SMT-fast / narrow-slow nodes). Applies to
//!   every mode, including `--smoke` and `--ckpt-smoke`;
//! * `--telemetry` / `--verify` — standard parity with the other binaries.

use std::path::{Path, PathBuf};
use std::time::Instant;

use batchsim::{
    heavy_light_mix, resume_batch, run_batch, run_batch_checkpointed, run_batch_until,
    BatchConfig, BatchFault, BatchOutcome, CheckpointPolicy, CheckpointStore, Discipline,
    FleetShape, FleetStats,
};
use cluster::LocalSched;
use experiments::benchfile;
use experiments::cli::{self, CliFlags};
use faultsim::{CkptCorruptSpec, TaskAbortSpec};

/// Thread count the study benchmarks against serial when the user did not
/// ask for a specific one.
const BENCH_THREADS: usize = 4;

/// One per-discipline row of the `BENCH_batch.json` baseline.
#[derive(serde::Serialize)]
struct BenchRow {
    discipline: &'static str,
    seed: u64,
    jobs: usize,
    completed: usize,
    mean_wait_secs: f64,
    makespan_secs: f64,
    /// Jobs completed per simulated second — the tracked figure. Identical
    /// at every thread count (the simulation is thread-count-invariant).
    throughput_per_sim_sec: f64,
}

/// The parallel-execution section of the baseline. Wall-clock fields are
/// host measurements and excluded from the CI baseline diff.
#[derive(serde::Serialize)]
struct ParallelBench {
    threads: usize,
    /// Serial and parallel traces/metrics matched byte-for-byte.
    byte_identical: bool,
    /// Jobs per simulated second across the whole study — the same at 1
    /// and `threads` workers by construction; recorded once as the shared
    /// deterministic figure.
    jobs_per_sim_sec: f64,
    host_cpus: usize,
    wall_secs_serial: f64,
    wall_secs_parallel: f64,
    /// wall_secs_serial / wall_secs_parallel.
    speedup: f64,
}

/// One per-policy row: the 30-job FCFS stream under each registered
/// balancing policy, so the baseline tracks the whole zoo, not just the
/// paper's policy.
#[derive(serde::Serialize)]
struct PolicyRow {
    policy: &'static str,
    completed: usize,
    mean_wait_secs: f64,
    makespan_secs: f64,
    throughput_per_sim_sec: f64,
}

/// One per-topology row: the 30-job EASY stream on each fleet hardware
/// shape (reference uniform, 2-socket, heterogeneous mix), so the baseline
/// tracks the heterogeneous engine alongside the disciplines and policies.
#[derive(serde::Serialize)]
struct TopologyRow {
    fleet_shape: &'static str,
    completed: usize,
    mean_wait_secs: f64,
    makespan_secs: f64,
    throughput_per_sim_sec: f64,
    /// FNV-1a fingerprint of the rendered event trace — deterministic, so
    /// CI diffs it like the scalar columns.
    trace_hash: String,
}

#[derive(serde::Serialize)]
struct Bench {
    disciplines: Vec<BenchRow>,
    policies: Vec<PolicyRow>,
    topologies: Vec<TopologyRow>,
    parallel: ParallelBench,
}

/// The per-topology section of the baseline: one short EASY stream per
/// fleet shape. Each run is also re-run at 4 threads and must match
/// byte-for-byte (the heterogeneous engine keeps the determinism contract).
fn topology_rows(seed: u64, failed: &mut bool) -> Vec<TopologyRow> {
    let jobs = heavy_light_mix(seed, 30);
    let shapes = [
        FleetShape::Uniform,
        FleetShape::Preset(batchsim::TopoPreset::TwoSocket),
        FleetShape::Mixed,
    ];
    let mut rows = Vec::new();
    for shape in shapes {
        let cfg = BatchConfig { discipline: Discipline::Easy, shape, ..Default::default() };
        let out = run_batch(&jobs, &cfg, None);
        let par = run_batch(&jobs, &BatchConfig { threads: 4, ..cfg }, None);
        if out.render_trace() != par.render_trace() {
            println!("topology/{}: PARALLEL DIVERGENCE", shape.label());
            *failed = true;
        }
        let stats = FleetStats::from_outcome(&out);
        println!("{}", stats.render_row(&format!("topology/{}", shape.label())));
        if stats.completed != jobs.len() {
            println!(
                "topology/{}: only {}/{} jobs completed",
                shape.label(),
                stats.completed,
                jobs.len()
            );
            *failed = true;
        }
        rows.push(TopologyRow {
            fleet_shape: shape.label(),
            completed: stats.completed,
            mean_wait_secs: stats.mean_wait,
            makespan_secs: stats.makespan,
            throughput_per_sim_sec: stats.throughput,
            trace_hash: format!("{:016x}", fnv1a(&out.render_trace())),
        });
    }
    rows
}

/// The policy-zoo section of the baseline: one short FCFS stream per
/// registered `--policy` name, every node-local kernel driven by that
/// balancer. Deterministic, so CI diffs these rows like the rest.
fn policy_rows(seed: u64, failed: &mut bool) -> Vec<PolicyRow> {
    let jobs = heavy_light_mix(seed, 30);
    let mut rows = Vec::new();
    for spec in schedsim::policies::registry() {
        let cfg = BatchConfig {
            discipline: Discipline::Fcfs,
            sched: LocalSched::Policy(spec.name),
            ..Default::default()
        };
        let out = run_batch(&jobs, &cfg, None);
        let stats = FleetStats::from_outcome(&out);
        println!("{}", stats.render_row(&format!("policy/{}", spec.name)));
        if stats.completed != jobs.len() {
            println!("policy/{}: only {}/{} jobs completed", spec.name, stats.completed, jobs.len());
            *failed = true;
        }
        rows.push(PolicyRow {
            policy: spec.name,
            completed: stats.completed,
            mean_wait_secs: stats.mean_wait,
            makespan_secs: stats.makespan,
            throughput_per_sim_sec: stats.throughput,
        });
    }
    rows
}

fn parsed(name: &str, default: u64) -> u64 {
    cli::value_of(name).map_or(default, |v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("{name} wants an integer, got `{v}`");
            std::process::exit(2);
        })
    })
}

/// 64-bit FNV-1a over a rendered trace — a stable fingerprint CI can diff
/// across serial and parallel jobs without shipping the whole trace.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Supervision knobs shared by every mode: the injected `taskabort:`
/// fault (if any), the `--watchdog-ms` wall-clock limit, and the
/// `--fleet-shape` hardware selection.
#[derive(Clone, Copy, Default)]
struct Supervision {
    abort: Option<TaskAbortSpec>,
    watchdog_secs: Option<f64>,
    shape: FleetShape,
}

impl Supervision {
    fn from_flags(flags: &CliFlags) -> Supervision {
        let watchdog_secs = cli::value_of("--watchdog-ms").map(|v| {
            let ms: u64 = v.parse().unwrap_or_else(|_| {
                eprintln!("--watchdog-ms wants an integer, got `{v}`");
                std::process::exit(2);
            });
            ms as f64 / 1000.0
        });
        let shape = cli::value_of("--fleet-shape").map_or(FleetShape::Uniform, |v| {
            FleetShape::parse(&v).unwrap_or_else(|| {
                eprintln!(
                    "--fleet-shape: unknown shape `{v}`; expected uniform, mixed, or a \
                     topology preset (openpower-710, 2-socket, numa, wide-smt)"
                );
                std::process::exit(2);
            })
        });
        Supervision {
            abort: flags.faults.as_ref().and_then(|p| p.task_abort),
            watchdog_secs,
            shape,
        }
    }

    fn apply(&self, cfg: BatchConfig) -> BatchConfig {
        BatchConfig {
            abort: self.abort,
            watchdog_secs: self.watchdog_secs,
            shape: self.shape,
            ..cfg
        }
    }
}

/// The full study: every discipline over one stream, determinism proved by
/// a serial double-run plus a parallel run that must match byte-for-byte.
/// Returns the per-discipline outcomes and the serial/parallel wall times.
fn study(
    jobs: &[batchsim::BatchJob],
    fault: Option<&BatchFault>,
    verify: bool,
    sched: LocalSched,
    threads: usize,
    sup: Supervision,
    failed: &mut bool,
) -> (Vec<(Discipline, BatchOutcome)>, f64, f64) {
    let mut outs = Vec::new();
    let serial_started = Instant::now();
    for discipline in Discipline::ALL {
        let cfg = sup.apply(BatchConfig {
            discipline,
            sched,
            verify_jobs: verify,
            threads: 1,
            ..Default::default()
        });
        let a = run_batch(jobs, &cfg, fault);
        let b = run_batch(jobs, &cfg, fault);
        if a.render_trace() != b.render_trace() {
            println!("{}: NONDETERMINISTIC (traces differ across reruns)", discipline.label());
            *failed = true;
        }
        outs.push((discipline, a));
    }
    // The double-run above is two full serial passes.
    let wall_serial = serial_started.elapsed().as_secs_f64() / 2.0;

    let parallel_started = Instant::now();
    for (discipline, serial) in &outs {
        let cfg = sup.apply(BatchConfig {
            discipline: *discipline,
            sched,
            verify_jobs: verify,
            threads,
            ..Default::default()
        });
        let par = run_batch(jobs, &cfg, fault);
        if par.render_trace() != serial.render_trace() {
            println!(
                "{}: PARALLEL DIVERGENCE (trace at {} threads differs from serial)",
                discipline.label(),
                threads
            );
            *failed = true;
        }
        if par.metrics != serial.metrics {
            println!(
                "{}: PARALLEL DIVERGENCE (metrics at {} threads differ from serial)",
                discipline.label(),
                threads
            );
            *failed = true;
        }
        if par.makespan != serial.makespan {
            println!("{}: PARALLEL DIVERGENCE (makespan differs)", discipline.label());
            *failed = true;
        }
    }
    let wall_parallel = parallel_started.elapsed().as_secs_f64();
    (outs, wall_serial, wall_parallel)
}

fn smoke(flags: &CliFlags, seed: u64, sup: Supervision) -> bool {
    println!(
        "== smoke: 3 disciplines x 3 local schedulers, per-job conformance, {} thread(s) ==",
        flags.threads
    );
    let jobs = heavy_light_mix(seed, 30);
    let fault = flags.faults.as_ref().and_then(|p| p.node_failure.as_ref()).map(BatchFault::from_spec);
    let mut failed = false;
    // `--policy` narrows the smoke to CFS vs. that one zoo policy; the
    // default covers the three builtin regimes.
    let scheds: Vec<LocalSched> = match flags.policy {
        None => LocalSched::ALL.to_vec(),
        Some(p) => vec![LocalSched::Cfs, LocalSched::Policy(p)],
    };
    for sched in scheds {
        for discipline in Discipline::ALL {
            let cfg = sup.apply(BatchConfig {
                discipline,
                sched,
                verify_jobs: true,
                threads: flags.threads,
                ..Default::default()
            });
            let out = run_batch(&jobs, &cfg, fault.as_ref());
            let clean = out.conformance_clean();
            let stats = FleetStats::from_outcome(&out);
            println!(
                "{}",
                stats.render_row(&format!(
                    "{}/{} {}",
                    discipline.label(),
                    sched.label(),
                    if clean { "clean" } else { "VIOLATIONS" }
                ))
            );
            // Thread-count-invariant fingerprint: CI diffs these lines
            // between the serial and --threads 4 smoke runs.
            println!(
                "trace-hash {}/{} {:016x}",
                discipline.label(),
                sched.label(),
                fnv1a(&out.render_trace())
            );
            if !clean {
                for (id, rep) in &out.conformance {
                    if !rep.is_clean() {
                        println!("  job {id}:\n{}", rep.render());
                    }
                }
                failed = true;
            }
        }
    }
    failed
}

/// Crash/resume self-test: checkpoint every discipline's run at several
/// event cuts, rotate the images through an on-disk store (honoring an
/// injected `ckptcorrupt:`), reload the newest usable generation, and
/// require the resumed trace and metrics to match the uninterrupted run
/// byte-for-byte. Returns true on any divergence.
fn ckpt_smoke(
    flags: &CliFlags,
    seed: u64,
    sup: Supervision,
    corrupt: Option<CkptCorruptSpec>,
    dir: &Path,
) -> bool {
    println!(
        "== ckpt-smoke: crash/resume byte-identity, 3 disciplines, {} thread(s), store {} ==",
        flags.threads,
        dir.display()
    );
    let jobs = heavy_light_mix(seed, 30);
    let fault = flags.faults.as_ref().and_then(|p| p.node_failure.as_ref()).map(BatchFault::from_spec);
    let mut failed = false;
    for discipline in Discipline::ALL {
        let cfg = sup.apply(BatchConfig {
            discipline,
            threads: flags.threads,
            ..Default::default()
        });
        let full = run_batch(&jobs, &cfg, fault.as_ref());
        let subdir = dir.join(discipline.label());
        let mut store = CheckpointStore::new(&subdir);
        if let Some(c) = corrupt {
            store = store.corrupt_nth_save(c.nth);
        }
        let mut saves = 0u32;
        for cut in [5usize, 25, 75] {
            if let Some(ckpt) = run_batch_until(&jobs, &cfg, fault.as_ref(), cut) {
                match store.save(&ckpt) {
                    Ok(_) => saves += 1,
                    Err(e) => {
                        println!("{}: SAVE FAILED at cut {cut}: {e}", discipline.label());
                        failed = true;
                    }
                }
            }
        }
        if saves == 0 {
            println!("{}: stream drained before the first cut; nothing to resume", discipline.label());
            continue;
        }
        let (ckpt, fell_back) = match CheckpointStore::load_latest(&subdir) {
            Ok(v) => v,
            Err(e) => {
                println!("{}: RECOVERY FAILED: {e}", discipline.label());
                failed = true;
                continue;
            }
        };
        let resumed = resume_batch(&ckpt);
        let identical =
            resumed.render_trace() == full.render_trace() && resumed.metrics == full.metrics;
        println!(
            "{}: {saves} checkpoint(s), resumed from {} events{}: trace-hash {:016x} {}",
            discipline.label(),
            ckpt.events_len(),
            if fell_back { " (fell back to .prev)" } else { "" },
            fnv1a(&resumed.render_trace()),
            if identical { "byte-identical" } else { "DIVERGED" }
        );
        failed |= !identical;
        // A torn save that was later rotated out is invisible to recovery;
        // only a corrupt *latest* generation must force the fallback.
        let must_fall_back = corrupt.is_some_and(|c| c.nth == saves);
        if fell_back != must_fall_back {
            println!(
                "{}: fallback mismatch (ckptcorrupt expected fallback={must_fall_back}, got {fell_back})",
                discipline.label()
            );
            failed = true;
        }
    }
    failed
}

/// `--checkpoint <dir>`: one EASY stream with periodic checkpoints rotated
/// into the store, leaving `<dir>/batch.ckpt` for a later `--resume`.
fn checkpointed_run(flags: &CliFlags, seed: u64, njobs: usize, sup: Supervision, dir: &Path) {
    let every_events = cli::value_of("--ckpt-events").map(|v| parsed_str("--ckpt-events", &v) as usize);
    let every_jobs = cli::value_of("--ckpt-jobs").map(|v| parsed_str("--ckpt-jobs", &v) as u32);
    let policy = CheckpointPolicy {
        // Default cadence: a checkpoint every 10 completed jobs.
        every_jobs: every_jobs.or(if every_events.is_none() { Some(10) } else { None }),
        every_events,
    };
    let corrupt = flags.faults.as_ref().and_then(|p| p.ckpt_corrupt);
    let jobs = heavy_light_mix(seed, njobs);
    let fault = flags.faults.as_ref().and_then(|p| p.node_failure.as_ref()).map(BatchFault::from_spec);
    let cfg = sup.apply(BatchConfig {
        discipline: Discipline::Easy,
        threads: flags.threads,
        ..Default::default()
    });
    let mut store = CheckpointStore::new(dir);
    if let Some(c) = corrupt {
        store = store.corrupt_nth_save(c.nth);
    }
    let mut saves = 0u32;
    let out = run_batch_checkpointed(&jobs, &cfg, fault.as_ref(), &policy, |ckpt| {
        match store.save(ckpt) {
            Ok(path) => {
                saves += 1;
                println!(
                    "checkpoint {saves}: {} events, t={:.3}s -> {}",
                    ckpt.events_len(),
                    ckpt.captured_at().as_secs_f64(),
                    path.display()
                );
            }
            Err(e) => println!("warning: checkpoint save failed: {e}"),
        }
    });
    let stats = FleetStats::from_outcome(&out);
    println!("{}", stats.render_row("easy/checkpointed"));
    println!("trace-hash easy {:016x}", fnv1a(&out.render_trace()));
    println!("\nbatch checkpoint run: OK ({saves} checkpoint(s) in {})", dir.display());
}

/// `--resume <path>`: continue a saved checkpoint to completion. A
/// directory picks the newest usable generation (with `.prev` fallback);
/// a file loads exactly that image.
fn resume_run(path: &Path) -> bool {
    let loaded = if path.is_dir() {
        CheckpointStore::load_latest(path)
    } else {
        CheckpointStore::load_file(path).map(|c| (c, false))
    };
    let (ckpt, fell_back) = match loaded {
        Ok(v) => v,
        Err(e) => {
            eprintln!("--resume: {e}");
            return true;
        }
    };
    println!(
        "== resume: {} events already traced, t={:.3}s{} ==",
        ckpt.events_len(),
        ckpt.captured_at().as_secs_f64(),
        if fell_back { " (latest corrupt; using .prev)" } else { "" }
    );
    let out = resume_batch(&ckpt);
    let stats = FleetStats::from_outcome(&out);
    println!("{}", stats.render_row("resumed"));
    println!("trace-hash resumed {:016x}", fnv1a(&out.render_trace()));
    println!("\nbatch resume: OK");
    false
}

fn parsed_str(name: &str, v: &str) -> u64 {
    v.parse().unwrap_or_else(|_| {
        eprintln!("{name} wants an integer, got `{v}`");
        std::process::exit(2);
    })
}

fn main() {
    let flags = CliFlags::from_env();
    let seed = parsed("--seed", 2008);
    let sup = Supervision::from_flags(&flags);

    if let Some(path) = cli::value_of("--resume") {
        if resume_run(Path::new(&path)) {
            std::process::exit(1);
        }
        return;
    }

    if cli::flag("--ckpt-smoke") {
        let corrupt = flags.faults.as_ref().and_then(|p| p.ckpt_corrupt);
        let dir = cli::value_of("--checkpoint").map_or_else(
            || std::env::temp_dir().join(format!("batch-ckpt-{}", std::process::id())),
            PathBuf::from,
        );
        if ckpt_smoke(&flags, seed, sup, corrupt, &dir) {
            eprintln!("batch ckpt-smoke: FAILED");
            std::process::exit(1);
        }
        println!("\nbatch ckpt-smoke: OK");
        return;
    }

    if cli::flag("--smoke") {
        if smoke(&flags, seed, sup) {
            eprintln!("batch smoke: FAILED");
            std::process::exit(1);
        }
        println!("\nbatch smoke: OK");
        return;
    }

    let njobs = parsed("--jobs", 200) as usize;

    if let Some(dir) = cli::value_of("--checkpoint") {
        checkpointed_run(&flags, seed, njobs, sup, Path::new(&dir));
        return;
    }

    let jobs = heavy_light_mix(seed, njobs);
    let fault = flags.faults.as_ref().and_then(|p| p.node_failure.as_ref()).map(BatchFault::from_spec);
    let bench_threads = if flags.threads > 1 { flags.threads } else { BENCH_THREADS };
    let mut failed = false;

    // `--policy` swaps every node-local kernel onto the named balancer;
    // the default full study runs the paper's HPCSched policy.
    let sched = flags.policy.map_or(LocalSched::Hpc, LocalSched::Policy);
    println!(
        "== batch: {njobs}-job heavy/light mix, seed {seed}, 4-node fleet, {} nodes ==",
        sched.label()
    );
    let (outs, wall_serial, wall_parallel) =
        study(&jobs, fault.as_ref(), flags.verify, sched, bench_threads, sup, &mut failed);

    let mut rows = Vec::new();
    let mut wait_of = std::collections::BTreeMap::new();
    let (mut total_completed, mut total_sim_secs) = (0usize, 0.0f64);
    for (discipline, out) in &outs {
        let stats = FleetStats::from_outcome(out);
        println!("{}", stats.render_row(discipline.label()));
        wait_of.insert(discipline.label(), stats.mean_wait);
        total_completed += stats.completed;
        total_sim_secs += stats.makespan;
        rows.push(BenchRow {
            discipline: discipline.label(),
            seed,
            jobs: njobs,
            completed: stats.completed,
            mean_wait_secs: stats.mean_wait,
            makespan_secs: stats.makespan,
            throughput_per_sim_sec: stats.throughput,
        });
        if !out.failed_nodes.is_empty() {
            println!(
                "  node failures: {:?}; degraded jobs: {}",
                out.failed_nodes,
                stats.degraded
            );
        }
    }
    if !failed {
        println!(
            "\ndeterminism: every discipline byte-identical across serial reruns \
             and at {bench_threads} threads"
        );
    }
    let speedup = if wall_parallel > 0.0 { wall_serial / wall_parallel } else { 1.0 };
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "parallel: {bench_threads} threads on {host_cpus} host cpu(s): \
         serial {wall_serial:.2}s, parallel {wall_parallel:.2}s ({speedup:.2}x)"
    );

    // The headline backfill claim, asserted on every run.
    let (fcfs, easy) = (wait_of["fcfs"], wait_of["easy"]);
    if fault.is_none() {
        if easy < fcfs {
            println!("EASY mean wait {easy:.3}s < FCFS {fcfs:.3}s (backfill pays off)");
        } else {
            println!("EASY mean wait {easy:.3}s did NOT beat FCFS {fcfs:.3}s");
            failed = true;
        }
    }

    if flags.telemetry {
        for (discipline, out) in &outs {
            println!("--- telemetry: batch / {} ---", discipline.label());
            println!("{}", telemetry::export::snapshot_summary(&out.metrics));
            println!("--- pool telemetry: batch / {} ---", discipline.label());
            println!("{}", telemetry::export::snapshot_summary(&out.pool_metrics));
        }
    }
    if flags.verify {
        for (discipline, out) in &outs {
            let clean = out.conformance_clean();
            println!(
                "--- verify: batch / {} --- {} ({} per-job kernel traces)",
                discipline.label(),
                if clean { "clean" } else { "VIOLATIONS" },
                out.conformance.len()
            );
            failed |= !clean;
        }
    }

    // The baseline only tracks the clean configuration; a faulted,
    // resized, or policy-overridden run would churn the committed file.
    if fault.is_none()
        && sup.abort.is_none()
        && njobs == 200
        && seed == 2008
        && flags.policy.is_none()
        && sup.shape == FleetShape::Uniform
    {
        println!("\n== policy zoo: 30-job FCFS stream per registered --policy ==");
        let policies = policy_rows(seed, &mut failed);
        println!("\n== topologies: 30-job EASY stream per fleet shape ==");
        let topologies = topology_rows(seed, &mut failed);
        let bench = Bench {
            disciplines: rows,
            policies,
            topologies,
            parallel: ParallelBench {
                threads: bench_threads,
                byte_identical: !failed,
                jobs_per_sim_sec: if total_sim_secs > 0.0 {
                    total_completed as f64 / total_sim_secs
                } else {
                    0.0
                },
                host_cpus,
                wall_secs_serial: wall_serial,
                wall_secs_parallel: wall_parallel,
                speedup,
            },
        };
        // Upsert section by section so the `fleet` binary's rows in the
        // same file survive a baseline regeneration (and vice versa).
        let write = benchfile::upsert_section("BENCH_batch.json", "disciplines", &bench.disciplines)
            .and_then(|()| benchfile::upsert_section("BENCH_batch.json", "policies", &bench.policies))
            .and_then(|()| {
                benchfile::upsert_section("BENCH_batch.json", "topologies", &bench.topologies)
            })
            .and_then(|()| benchfile::upsert_section("BENCH_batch.json", "parallel", &bench.parallel));
        match write {
            Ok(()) => println!("throughput baseline written to BENCH_batch.json"),
            Err(e) => println!("warning: could not write BENCH_batch.json: {e}"),
        }
    }

    if failed {
        eprintln!("batch: FAILED");
        std::process::exit(1);
    }
    println!("\nbatch: OK");
}
