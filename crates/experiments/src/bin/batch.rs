//! Two-level batch scheduling study: a seeded job stream through the
//! `batchsim` queue (FCFS / SJF / EASY backfill), each admitted gang
//! placed on the fleet and run by one simulated HPCSched kernel per node.
//!
//! The default run drives a 200-job heavy/light mix under all three
//! disciplines, proves determinism (byte-identical event traces across two
//! runs), requires EASY to strictly beat FCFS on mean wait, and writes the
//! throughput baseline to `BENCH_batch.json`.
//!
//! Flags:
//! * `--jobs N` / `--seed N` — stream length and seed (default 200 / 2008);
//! * `--smoke` — short stream under 3 disciplines x 3 local scheduler
//!   modes with per-job kernel conformance (C001–C005) checked;
//! * `--faults <spec>` — inject a `nodefail:` plan into the queued system;
//! * `--telemetry` / `--verify` — standard parity with the other binaries.

use batchsim::{
    heavy_light_mix, run_batch, BatchConfig, BatchFault, BatchOutcome, Discipline, FleetStats,
};
use cluster::LocalSched;
use experiments::cli::{self, CliFlags};

/// One row of the `BENCH_batch.json` baseline.
#[derive(serde::Serialize)]
struct BenchRow {
    discipline: &'static str,
    seed: u64,
    jobs: usize,
    completed: usize,
    mean_wait_secs: f64,
    makespan_secs: f64,
    /// Jobs completed per simulated second — the tracked figure.
    throughput_per_sim_sec: f64,
}

fn parsed(name: &str, default: u64) -> u64 {
    cli::value_of(name).map_or(default, |v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("{name} wants an integer, got `{v}`");
            std::process::exit(2);
        })
    })
}

/// The full study: every discipline over one stream, determinism proved by
/// double-run, per-job conformance when `verify` is set.
fn study(
    jobs: &[batchsim::BatchJob],
    fault: Option<&BatchFault>,
    verify: bool,
    failed: &mut bool,
) -> Vec<(Discipline, BatchOutcome)> {
    let mut outs = Vec::new();
    for discipline in Discipline::ALL {
        let cfg = BatchConfig { discipline, verify_jobs: verify, ..Default::default() };
        let a = run_batch(jobs, &cfg, fault);
        let b = run_batch(jobs, &cfg, fault);
        if a.render_trace() != b.render_trace() {
            println!("{}: NONDETERMINISTIC (traces differ across reruns)", discipline.label());
            *failed = true;
        }
        outs.push((discipline, a));
    }
    outs
}

fn smoke(flags: &CliFlags, seed: u64) -> bool {
    println!("== smoke: 3 disciplines x 3 local schedulers, per-job conformance ==");
    let jobs = heavy_light_mix(seed, 30);
    let fault = flags.faults.as_ref().and_then(|p| p.node_failure.as_ref()).map(BatchFault::from_spec);
    let mut failed = false;
    for sched in LocalSched::ALL {
        for discipline in Discipline::ALL {
            let cfg = BatchConfig {
                discipline,
                sched,
                verify_jobs: true,
                ..Default::default()
            };
            let out = run_batch(&jobs, &cfg, fault.as_ref());
            let clean = out.conformance_clean();
            let stats = FleetStats::from_outcome(&out);
            println!(
                "{}",
                stats.render_row(&format!(
                    "{}/{} {}",
                    discipline.label(),
                    sched.label(),
                    if clean { "clean" } else { "VIOLATIONS" }
                ))
            );
            if !clean {
                for (id, rep) in &out.conformance {
                    if !rep.is_clean() {
                        println!("  job {id}:\n{}", rep.render());
                    }
                }
                failed = true;
            }
        }
    }
    failed
}

fn main() {
    let flags = CliFlags::from_env();
    let seed = parsed("--seed", 2008);

    if cli::flag("--smoke") {
        if smoke(&flags, seed) {
            eprintln!("batch smoke: FAILED");
            std::process::exit(1);
        }
        println!("\nbatch smoke: OK");
        return;
    }

    let njobs = parsed("--jobs", 200) as usize;
    let jobs = heavy_light_mix(seed, njobs);
    let fault = flags.faults.as_ref().and_then(|p| p.node_failure.as_ref()).map(BatchFault::from_spec);
    let mut failed = false;

    println!("== batch: {njobs}-job heavy/light mix, seed {seed}, 4-node fleet ==");
    let outs = study(&jobs, fault.as_ref(), flags.verify, &mut failed);

    let mut bench = Vec::new();
    let mut wait_of = std::collections::BTreeMap::new();
    for (discipline, out) in &outs {
        let stats = FleetStats::from_outcome(out);
        println!("{}", stats.render_row(discipline.label()));
        wait_of.insert(discipline.label(), stats.mean_wait);
        bench.push(BenchRow {
            discipline: discipline.label(),
            seed,
            jobs: njobs,
            completed: stats.completed,
            mean_wait_secs: stats.mean_wait,
            makespan_secs: stats.makespan,
            throughput_per_sim_sec: stats.throughput,
        });
        if !out.failed_nodes.is_empty() {
            println!(
                "  node failures: {:?}; degraded jobs: {}",
                out.failed_nodes,
                stats.degraded
            );
        }
    }
    println!("\ndeterminism: every discipline byte-identical across reruns");

    // The headline backfill claim, asserted on every run.
    let (fcfs, easy) = (wait_of["fcfs"], wait_of["easy"]);
    if fault.is_none() {
        if easy < fcfs {
            println!("EASY mean wait {easy:.3}s < FCFS {fcfs:.3}s (backfill pays off)");
        } else {
            println!("EASY mean wait {easy:.3}s did NOT beat FCFS {fcfs:.3}s");
            failed = true;
        }
    }

    if flags.telemetry {
        for (discipline, out) in &outs {
            println!("--- telemetry: batch / {} ---", discipline.label());
            println!("{}", telemetry::export::snapshot_summary(&out.metrics));
        }
    }
    if flags.verify {
        for (discipline, out) in &outs {
            let clean = out.conformance_clean();
            println!(
                "--- verify: batch / {} --- {} ({} per-job kernel traces)",
                discipline.label(),
                if clean { "clean" } else { "VIOLATIONS" },
                out.conformance.len()
            );
            failed |= !clean;
        }
    }

    // The baseline only tracks the clean configuration; a faulted or
    // resized run would churn the committed file.
    if fault.is_none() && njobs == 200 && seed == 2008 {
        let json = serde_json::to_string_pretty(&bench).expect("bench rows serialize");
        match std::fs::write("BENCH_batch.json", json + "\n") {
            Ok(()) => println!("throughput baseline written to BENCH_batch.json"),
            Err(e) => println!("warning: could not write BENCH_batch.json: {e}"),
        }
    }

    if failed {
        eprintln!("batch: FAILED");
        std::process::exit(1);
    }
    println!("\nbatch: OK");
}
