//! Paper Table V / Figure 5 — BT-MZ.

use experiments::cli::CliFlags;
use experiments::paper::BTMZ;
use experiments::report::{report, save_outputs};
use experiments::runner::run_modes_faulted_on;
use experiments::{ExperimentMode, WorkloadKind};

fn main() {
    let wl = WorkloadKind::BtMz(Default::default());
    let flags = CliFlags::from_env();
    let modes = flags.modes(&ExperimentMode::ALL);
    let results =
        run_modes_faulted_on(&wl, &modes, 2008, flags.faults.as_ref(), flags.topology.as_ref());
    print!("{}", report("Table V / Figure 5 — BT-MZ", BTMZ, &results, true));
    flags.epilogue(&results);
    let dir = std::path::Path::new("experiments_output");
    if let Err(e) = save_outputs(dir, &flags.output_slug("btmz"), &results) {
        eprintln!("warning: could not save outputs: {e}");
    } else {
        println!("machine-readable outputs in {}", dir.display());
    }
}
