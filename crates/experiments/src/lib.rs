//! Shared experiment runner: every table and figure of the paper's
//! evaluation section (§V) is regenerated through this harness. See
//! `DESIGN.md` §4 for the experiment index and `EXPERIMENTS.md` for the
//! measured-vs-paper record.

pub mod benchfile;
pub mod cli;
pub mod paper;
pub mod report;
pub mod runner;

pub use runner::{
    run, run_with_faults, try_run, try_run_with_faults, ExperimentMode, RunResult, WorkloadKind,
};
