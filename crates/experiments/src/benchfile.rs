//! Read–modify–write access to the shared `BENCH_*.json` baselines.
//!
//! `BENCH_batch.json` is written by two binaries: `batch` owns the
//! `disciplines`/`policies`/`parallel` sections, `fleet` owns the `fleet`
//! section. Each must update its own keys without clobbering the other's,
//! so both go through [`upsert_section`], which round-trips the file as a
//! raw [`serde::Value`] tree and replaces exactly one top-level key.

use serde::Value;

/// A verbatim JSON tree: serializes to itself, deserializes from
/// anything. The escape hatch that lets a binary rewrite one section of a
/// baseline while carrying every other section through untouched.
pub struct RawJson(pub Value);

impl serde::Serialize for RawJson {
    fn to_value(&self) -> Value {
        self.0.clone()
    }
}

impl serde::Deserialize for RawJson {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        Ok(RawJson(v.clone()))
    }
}

/// Load `path` as a JSON object (missing or malformed file → empty
/// object), set `key` to `section`, and write the object back pretty-
/// printed. Existing keys keep their order; a new key appends.
pub fn upsert_section<T: serde::Serialize>(
    path: &str,
    key: &str,
    section: &T,
) -> std::io::Result<()> {
    let base = std::fs::read_to_string(path)
        .ok()
        .and_then(|s| serde_json::from_str::<RawJson>(&s).ok())
        .map(|r| r.0)
        .unwrap_or(Value::Map(Vec::new()));
    let mut entries = match base {
        Value::Map(m) => m,
        _ => Vec::new(),
    };
    let fresh = section.to_value();
    match entries.iter_mut().find(|(k, _)| k == key) {
        Some((_, v)) => *v = fresh,
        None => entries.push((key.to_string(), fresh)),
    }
    let json = serde_json::to_string_pretty(&RawJson(Value::Map(entries)))
        .expect("a Value tree always serializes");
    std::fs::write(path, json + "\n")
}

/// Read one top-level section of `path` into a typed value; `None` when
/// the file or the key is missing or does not parse.
pub fn read_section<T: serde::Deserialize>(path: &str, key: &str) -> Option<T> {
    let raw = serde_json::from_str::<RawJson>(&std::fs::read_to_string(path).ok()?).ok()?;
    let map = raw.0.as_map()?.to_vec();
    let (_, v) = map.into_iter().find(|(k, _)| k == key)?;
    T::from_value(&v).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(serde::Serialize, serde::Deserialize, PartialEq, Debug)]
    struct Row {
        n: u64,
        label: String,
    }

    #[test]
    fn upsert_preserves_other_sections_and_round_trips() {
        let dir = std::env::temp_dir().join(format!("benchfile-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.json");
        let path = path.to_str().unwrap();

        upsert_section(path, "alpha", &vec![Row { n: 1, label: "a".into() }]).unwrap();
        upsert_section(path, "beta", &vec![Row { n: 2, label: "b".into() }]).unwrap();
        upsert_section(path, "alpha", &vec![Row { n: 3, label: "c".into() }]).unwrap();

        let alpha: Vec<Row> = read_section(path, "alpha").unwrap();
        let beta: Vec<Row> = read_section(path, "beta").unwrap();
        assert_eq!(alpha, vec![Row { n: 3, label: "c".into() }]);
        assert_eq!(beta, vec![Row { n: 2, label: "b".into() }]);
        assert!(read_section::<Vec<Row>>(path, "gamma").is_none());
        std::fs::remove_dir_all(&dir).ok();
    }
}
