//! Discrete-event simulation core shared by every crate in the HPCSched
//! reproduction stack.
//!
//! The whole reproduction is a *simulation*: the paper's scheduler runs inside
//! a Linux kernel on a real POWER5 machine, while ours runs inside a
//! deterministic discrete-event model of both. This crate provides the three
//! primitives everything else is built on:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution simulated time,
//! * [`EventQueue`] — a cancellable, deterministically-ordered event queue,
//! * [`SimRng`] — a seeded RNG with the distribution helpers the workload and
//!   OS-noise models need,
//!
//! plus small online-statistics utilities ([`stats`]) used by the scheduler
//! metrics and by the experiment harness, [`exec`] — a deterministic
//! scoped-thread work pool that runs independent simulation pieces (one
//! node-level kernel per task) in parallel while keeping every reduction
//! order-stable and byte-identical to serial execution — and [`snapshot`] —
//! versioned, checksummed, byte-stable state encoding for crash-consistent
//! checkpoint/restore.
//!
//! # Determinism
//!
//! Every simulation run in this workspace is a pure function of its
//! configuration and a `u64` seed. The event queue breaks timestamp ties with
//! a monotonically increasing sequence number so iteration order never depends
//! on heap internals, and [`SimRng`] is an explicitly-seeded `SmallRng`.

pub mod event;
pub mod exec;
pub mod rng;
pub mod snapshot;
pub mod stats;
pub mod time;

pub use event::{EventId, EventQueue, EventQueueCounters, ScheduledEvent};
pub use exec::{Pool, PoolCounters, SupervisePolicy, Supervised, TaskFailure};
pub use snapshot::{Snapshot, SnapshotError, SnapshotReader, SnapshotWriter};
pub use rng::SimRng;
pub use stats::{Histogram, OnlineStats, UtilizationTracker};
pub use time::{SimDuration, SimTime};
