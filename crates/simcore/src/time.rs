//! Simulated time.
//!
//! All simulated clocks in the workspace use a `u64` nanosecond counter.
//! Nanosecond resolution matches what the Linux scheduler uses internally
//! (`sched_clock()` returns nanoseconds) and gives ~584 simulated years of
//! range, far beyond any experiment here.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute point in simulated time, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; used as a sentinel for "no deadline".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Nanoseconds since simulation start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Simulated seconds since start, as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Elapsed duration since `earlier`. Saturates at zero instead of
    /// panicking so callers comparing clock samples taken out of order get a
    /// zero span rather than UB-adjacent wrapping.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// `self + dur`, saturating at the far future.
    #[inline]
    pub fn saturating_add(self, dur: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(dur.0))
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> SimDuration {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds. Negative inputs clamp to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> SimDuration {
        if s <= 0.0 {
            SimDuration::ZERO
        } else {
            SimDuration((s * 1e9).round() as u64)
        }
    }

    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Scale by a non-negative float, rounding to the nearest nanosecond.
    /// Used by the CPU model to convert work at a given speed into time.
    #[inline]
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        debug_assert!(factor >= 0.0, "negative time scaling");
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// Divide by a positive float, rounding to the nearest nanosecond.
    #[inline]
    pub fn div_f64(self, divisor: f64) -> SimDuration {
        debug_assert!(divisor > 0.0, "division by non-positive factor");
        SimDuration((self.0 as f64 / divisor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction went backwards");
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimDuration subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        debug_assert!(self.0 >= rhs.0, "SimDuration subtraction underflow");
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimDuration::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimDuration::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimDuration::from_nanos(7).as_nanos(), 7);
    }

    #[test]
    fn from_secs_f64_clamps_negative() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(10);
        assert_eq!(t.as_nanos(), 10_000_000);
        let later = t + SimDuration::from_millis(5);
        assert_eq!(later - t, SimDuration::from_millis(5));
        assert_eq!(t.saturating_since(later), SimDuration::ZERO);
        assert_eq!(later.saturating_since(t), SimDuration::from_millis(5));
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_secs(1);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_millis(500));
        assert_eq!(d.div_f64(2.0), SimDuration::from_millis(500));
        assert_eq!(d * 3, SimDuration::from_secs(3));
        assert_eq!(d / 4, SimDuration::from_millis(250));
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(SimTime::MAX.saturating_add(SimDuration::from_secs(1)), SimTime::MAX);
        let small = SimDuration::from_nanos(1);
        let big = SimDuration::from_nanos(2);
        assert_eq!(small.saturating_sub(big), SimDuration::ZERO);
    }

    #[test]
    fn ordering_and_sum() {
        assert!(SimTime(1) < SimTime(2));
        let total: SimDuration =
            [SimDuration::from_secs(1), SimDuration::from_secs(2)].into_iter().sum();
        assert_eq!(total, SimDuration::from_secs(3));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
    }
}
