//! Deterministic, cancellable event queue.
//!
//! A classic discrete-event-simulation future-event list. Two properties
//! matter for this workspace:
//!
//! 1. **Determinism** — events scheduled for the same timestamp pop in the
//!    order they were scheduled (FIFO tie-break via a sequence counter), so a
//!    simulation never depends on binary-heap internals.
//! 2. **Cancellation** — timers (scheduler ticks, RR time slices, message
//!    deliveries) are frequently re-armed; [`EventQueue::cancel`] is O(1)
//!    amortized (lazy deletion: cancelled entries are skipped at pop time,
//!    and the heap is compacted whenever cancelled entries outnumber live
//!    ones, so a cancel/re-arm loop cannot grow the backlog without bound).

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Handle to a scheduled event, usable for cancellation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId(u64);

impl EventId {
    /// A handle that never corresponds to a live event. Useful as an
    /// initializer for "no timer armed" fields.
    pub const NONE: EventId = EventId(u64::MAX);
}

/// An event popped from the queue: when it fires and its payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledEvent<E> {
    pub time: SimTime,
    pub id: EventId,
    pub payload: E,
}

struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first. `seq` is unique, giving a total order.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Telemetry handles for one event queue. All counters are optional-free:
/// an unattached queue pays a single branch per operation.
#[derive(Clone)]
pub struct EventQueueCounters {
    pub scheduled: telemetry::Counter,
    pub cancelled: telemetry::Counter,
    pub processed: telemetry::Counter,
}

impl EventQueueCounters {
    /// Registers the three queue counters under `prefix` (e.g.
    /// `sim.events`) in `registry`.
    pub fn register(registry: &telemetry::MetricsRegistry, prefix: &str) -> Self {
        EventQueueCounters {
            scheduled: registry.counter(&format!("{prefix}.scheduled")),
            cancelled: registry.counter(&format!("{prefix}.cancelled")),
            processed: registry.counter(&format!("{prefix}.processed")),
        }
    }
}

/// Future-event list with lazy cancellation.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    /// Every cancelled sequence number, ever. Entries stay here after the
    /// heap drops them (skim or compaction) so a second `cancel` of the
    /// same id always reports `false`.
    cancelled: std::collections::BTreeSet<u64>,
    /// Cancelled entries still physically in the heap — the quantity the
    /// compaction trigger compares against the heap length.
    dead_in_heap: usize,
    /// Sequence numbers that already fired; cancelling one is a no-op and
    /// must report `false`, which a heap alone cannot tell apart from a
    /// pending id without scanning.
    fired: std::collections::BTreeSet<u64>,
    live: usize,
    last_popped: SimTime,
    counters: Option<EventQueueCounters>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            cancelled: std::collections::BTreeSet::new(),
            dead_in_heap: 0,
            fired: std::collections::BTreeSet::new(),
            live: 0,
            last_popped: SimTime::ZERO,
            counters: None,
        }
    }

    /// Attach telemetry counters; subsequent schedule/cancel/pop operations
    /// are counted. Counts start from this call (not retroactive).
    pub fn attach_counters(&mut self, counters: EventQueueCounters) {
        self.counters = Some(counters);
    }

    /// Number of live (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Schedule `payload` to fire at absolute time `time`.
    ///
    /// # Panics
    /// In debug builds, panics if `time` is before the last popped event —
    /// scheduling into the past is always a simulation bug.
    pub fn schedule(&mut self, time: SimTime, payload: E) -> EventId {
        debug_assert!(
            time >= self.last_popped,
            "scheduling into the past: {time:?} < {:?}",
            self.last_popped
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
        self.live += 1;
        if let Some(c) = &self.counters {
            c.scheduled.inc();
        }
        EventId(seq)
    }

    /// Cancel a previously scheduled event. Returns `true` if the event was
    /// still pending (i.e. this call prevented it from firing).
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id == EventId::NONE || id.0 >= self.next_seq {
            return false;
        }
        if self.cancelled.contains(&id.0) || self.fired.contains(&id.0) {
            return false;
        }
        self.cancelled.insert(id.0);
        self.dead_in_heap += 1;
        self.live = self.live.saturating_sub(1);
        if let Some(c) = &self.counters {
            c.cancelled.inc();
        }
        self.maybe_compact();
        true
    }

    /// Physical heap length including not-yet-skimmed cancelled entries —
    /// the quantity compaction bounds. Diagnostic/test use.
    pub fn backlog(&self) -> usize {
        self.heap.len()
    }

    /// Rebuild the heap without its cancelled entries once they outnumber
    /// the live ones. Rebuilding is O(n); the 50% trigger plus the size
    /// floor amortizes it to O(1) per cancel and keeps the backlog under
    /// `2 × live + COMPACT_MIN` however long a cancel/re-arm loop runs.
    /// Pop order is unaffected: entries keep their `(time, seq)` keys, which
    /// form a total order independent of heap internals.
    fn maybe_compact(&mut self) {
        const COMPACT_MIN: usize = 64;
        if self.heap.len() < COMPACT_MIN || self.dead_in_heap * 2 <= self.heap.len() {
            return;
        }
        let entries = std::mem::take(&mut self.heap).into_vec();
        let kept: Vec<Entry<E>> =
            entries.into_iter().filter(|e| !self.cancelled.contains(&e.seq)).collect();
        self.heap = BinaryHeap::from(kept);
        self.dead_in_heap = 0;
    }

    /// Timestamp of the next live event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skim();
        self.heap.peek().map(|e| e.time)
    }

    /// Pop the next live event.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        self.skim();
        let entry = self.heap.pop()?;
        self.live -= 1;
        self.last_popped = entry.time;
        self.fired.insert(entry.seq);
        if let Some(c) = &self.counters {
            c.processed.inc();
        }
        Some(ScheduledEvent { time: entry.time, id: EventId(entry.seq), payload: entry.payload })
    }

    /// Discard cancelled entries sitting at the top of the heap. The seqs
    /// stay in `cancelled` so a later `cancel` of the same id is still a
    /// reported no-op.
    fn skim(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.cancelled.contains(&top.seq) {
                self.heap.pop();
                self.dead_in_heap = self.dead_in_heap.saturating_sub(1);
            } else {
                break;
            }
        }
    }

    /// Drop all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.cancelled.clear();
        self.dead_in_heap = 0;
        self.live = 0;
    }
}

impl<E> EventQueue<E> {
    /// Test/diagnostic helper: true if `id` has already fired.
    pub fn has_fired(&self, id: EventId) -> bool {
        self.fired.contains(&id.0)
    }
}

impl<E: crate::snapshot::Snapshot> EventQueue<E> {
    /// Byte-stable encoding of the queue's logical state. Heap layout is
    /// an implementation detail, so live entries are emitted sorted by
    /// their `(time, seq)` total order — equal queues always produce
    /// equal bytes, whatever schedule/cancel history built them. The
    /// `cancelled` and `fired` sets ride along so post-restore `cancel`
    /// calls keep their exact semantics (double-cancel and
    /// cancel-after-fire still report `false`).
    pub fn snapshot(&self, w: &mut crate::snapshot::SnapshotWriter) {
        let mut entries: Vec<&Entry<E>> =
            self.heap.iter().filter(|e| !self.cancelled.contains(&e.seq)).collect();
        entries.sort_by_key(|e| (e.time, e.seq));
        w.put_len(entries.len());
        for e in entries {
            w.put(&e.time);
            w.put_u64(e.seq);
            w.put(&e.payload);
        }
        w.put_u64(self.next_seq);
        w.put(&self.cancelled);
        w.put(&self.fired);
        w.put(&self.last_popped);
    }

    /// Rebuild a queue from [`EventQueue::snapshot`] bytes. Counters are
    /// not restored (attach fresh ones if wanted); pop order and
    /// cancellation semantics are exactly those of the snapshotted queue.
    pub fn restore(
        r: &mut crate::snapshot::SnapshotReader<'_>,
    ) -> Result<EventQueue<E>, crate::snapshot::SnapshotError> {
        let n = r.get_len()?;
        let mut heap = BinaryHeap::new();
        for _ in 0..n {
            let time: SimTime = r.get()?;
            let seq = r.get_u64()?;
            let payload: E = r.get()?;
            heap.push(Entry { time, seq, payload });
        }
        let next_seq = r.get_u64()?;
        let cancelled: std::collections::BTreeSet<u64> = r.get()?;
        let fired: std::collections::BTreeSet<u64> = r.get()?;
        let last_popped: SimTime = r.get()?;
        Ok(EventQueue {
            live: heap.len(),
            heap,
            next_seq,
            cancelled,
            // Snapshots hold live entries only; nothing dead to compact.
            dead_in_heap: 0,
            fired,
            last_popped,
            counters: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), "c");
        q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn same_time_pops_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_suppresses_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        assert!(q.cancel(a));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().payload, "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn double_cancel_and_cancel_after_fire_return_false() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(10), "a");
        assert!(q.cancel(a));
        assert!(!q.cancel(a));

        let b = q.schedule(t(20), "b");
        assert_eq!(q.pop().unwrap().payload, "b");
        assert!(!q.cancel(b));
        assert!(q.has_fired(b));
    }

    #[test]
    fn cancel_none_is_noop() {
        let mut q = EventQueue::<()>::new();
        assert!(!q.cancel(EventId::NONE));
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(20)));
    }

    #[test]
    fn len_tracks_live_events() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        let a = q.schedule(t(1), 1);
        q.schedule(t(2), 2);
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(t(1), 1);
        q.schedule(t(2), 2);
        q.clear();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_rearm_loop_keeps_backlog_bounded() {
        // A timer wheel pattern: every iteration cancels the armed timer
        // and re-arms it later. Lazy deletion alone would grow the heap by
        // one dead entry per iteration; compaction must keep it bounded.
        let mut q = EventQueue::new();
        let mut armed = q.schedule(t(10), 0u32);
        let mut peak = 0;
        for i in 0..10_000u64 {
            assert!(q.cancel(armed));
            armed = q.schedule(t(10 + i), 1);
            peak = peak.max(q.backlog());
        }
        assert_eq!(q.len(), 1, "exactly one live timer");
        assert!(peak <= 130, "backlog must stay bounded, peaked at {peak}");
        assert_eq!(q.pop().unwrap().payload, 1, "the live timer still fires");
        assert!(q.pop().is_none());
    }

    #[test]
    fn compaction_preserves_pop_order_and_cancel_semantics() {
        let mut q = EventQueue::new();
        let mut keep = Vec::new();
        let mut dead = Vec::new();
        for i in 0..200u64 {
            let id = q.schedule(t(1000 - i), i);
            if i % 4 == 0 {
                keep.push((1000 - i, i));
            } else {
                dead.push(id);
            }
        }
        for id in &dead {
            assert!(q.cancel(*id));
        }
        assert!(q.backlog() <= 100, "cancelled majority must have been compacted away");
        for id in dead {
            assert!(!q.cancel(id), "compacted entries still report already-cancelled");
        }
        keep.sort();
        let popped: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(popped, keep.iter().map(|&(_, i)| i).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    #[cfg(debug_assertions)]
    fn scheduling_into_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule(t(10), "a");
        q.pop();
        q.schedule(t(5), "late");
    }

    fn snap_bytes(q: &EventQueue<u64>) -> Vec<u8> {
        let mut w = crate::snapshot::SnapshotWriter::new();
        q.snapshot(&mut w);
        w.finish()
    }

    #[test]
    fn snapshot_round_trips_pop_order_and_cancel_semantics() {
        let mut q = EventQueue::new();
        let mut ids = Vec::new();
        for i in 0..50u64 {
            ids.push(q.schedule(t(1000 - i), i));
        }
        // A popped event, a cancelled one, and plenty pending.
        q.schedule(t(1), 999);
        assert_eq!(q.pop().unwrap().payload, 999);
        let dead = ids[7];
        assert!(q.cancel(dead));

        let bytes = snap_bytes(&q);
        let mut r = crate::snapshot::SnapshotReader::new(&bytes).unwrap();
        let mut back: EventQueue<u64> = EventQueue::restore(&mut r).unwrap();
        r.finish().unwrap();

        assert_eq!(back.len(), q.len());
        // Restored cancel semantics: re-cancelling the dead id and the
        // fired id still report false; a live id still cancels.
        assert!(!back.cancel(dead));
        let live = ids[3];
        assert!(back.cancel(live));
        assert!(q.cancel(live));

        let a: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| (e.time, e.payload))).collect();
        let b: Vec<_> = std::iter::from_fn(|| back.pop().map(|e| (e.time, e.payload))).collect();
        assert_eq!(a, b, "pop order survives the round trip");
    }

    #[test]
    fn equal_queues_produce_equal_snapshot_bytes() {
        // Same logical state via different histories: one queue schedules
        // in ascending order, the other descending with an extra
        // cancel/re-arm — entries are emitted in (time, seq)-sorted order
        // so only the *live set* and bookkeeping sets matter.
        let mut a = EventQueue::new();
        for i in 0..10u64 {
            a.schedule(t(10 + i), i);
        }
        let mut b = EventQueue::new();
        for i in (0..10u64).rev() {
            b.schedule(t(10 + i), i);
        }
        // Histories differ, so the seq bookkeeping differs — but a queue
        // snapshotted twice without mutation is always byte-identical.
        assert_eq!(snap_bytes(&a), snap_bytes(&a));
        assert_ne!(snap_bytes(&a), snap_bytes(&b), "different seq assignment is visible state");

        // And a restore of a restores bytes exactly.
        let bytes = snap_bytes(&a);
        let mut r = crate::snapshot::SnapshotReader::new(&bytes).unwrap();
        let back: EventQueue<u64> = EventQueue::restore(&mut r).unwrap();
        assert_eq!(snap_bytes(&back), bytes, "snapshot∘restore is the identity on bytes");
    }
}
