//! Deterministic, cancellable event queue.
//!
//! A classic discrete-event-simulation future-event list. Two properties
//! matter for this workspace:
//!
//! 1. **Determinism** — events scheduled for the same timestamp pop in the
//!    order they were scheduled (FIFO tie-break via a sequence counter), so a
//!    simulation never depends on binary-heap internals.
//! 2. **Cancellation** — timers (scheduler ticks, RR time slices, message
//!    deliveries) are frequently re-armed; [`EventQueue::cancel`] is O(1)
//!    (lazy deletion: cancelled entries are skipped at pop time).

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Handle to a scheduled event, usable for cancellation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId(u64);

impl EventId {
    /// A handle that never corresponds to a live event. Useful as an
    /// initializer for "no timer armed" fields.
    pub const NONE: EventId = EventId(u64::MAX);
}

/// An event popped from the queue: when it fires and its payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledEvent<E> {
    pub time: SimTime,
    pub id: EventId,
    pub payload: E,
}

struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first. `seq` is unique, giving a total order.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Telemetry handles for one event queue. All counters are optional-free:
/// an unattached queue pays a single branch per operation.
#[derive(Clone)]
pub struct EventQueueCounters {
    pub scheduled: telemetry::Counter,
    pub cancelled: telemetry::Counter,
    pub processed: telemetry::Counter,
}

impl EventQueueCounters {
    /// Registers the three queue counters under `prefix` (e.g.
    /// `sim.events`) in `registry`.
    pub fn register(registry: &telemetry::MetricsRegistry, prefix: &str) -> Self {
        EventQueueCounters {
            scheduled: registry.counter(&format!("{prefix}.scheduled")),
            cancelled: registry.counter(&format!("{prefix}.cancelled")),
            processed: registry.counter(&format!("{prefix}.processed")),
        }
    }
}

/// Future-event list with lazy cancellation.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    /// Pending-but-cancelled sequence numbers, skipped lazily at pop time.
    cancelled: std::collections::HashSet<u64>,
    /// Sequence numbers that already fired; cancelling one is a no-op and
    /// must report `false`, which a heap alone cannot tell apart from a
    /// pending id without scanning.
    fired: std::collections::HashSet<u64>,
    live: usize,
    last_popped: SimTime,
    counters: Option<EventQueueCounters>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            cancelled: std::collections::HashSet::new(),
            fired: std::collections::HashSet::new(),
            live: 0,
            last_popped: SimTime::ZERO,
            counters: None,
        }
    }

    /// Attach telemetry counters; subsequent schedule/cancel/pop operations
    /// are counted. Counts start from this call (not retroactive).
    pub fn attach_counters(&mut self, counters: EventQueueCounters) {
        self.counters = Some(counters);
    }

    /// Number of live (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Schedule `payload` to fire at absolute time `time`.
    ///
    /// # Panics
    /// In debug builds, panics if `time` is before the last popped event —
    /// scheduling into the past is always a simulation bug.
    pub fn schedule(&mut self, time: SimTime, payload: E) -> EventId {
        debug_assert!(
            time >= self.last_popped,
            "scheduling into the past: {time:?} < {:?}",
            self.last_popped
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
        self.live += 1;
        if let Some(c) = &self.counters {
            c.scheduled.inc();
        }
        EventId(seq)
    }

    /// Cancel a previously scheduled event. Returns `true` if the event was
    /// still pending (i.e. this call prevented it from firing).
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id == EventId::NONE || id.0 >= self.next_seq {
            return false;
        }
        if self.cancelled.contains(&id.0) || self.fired.contains(&id.0) {
            return false;
        }
        self.cancelled.insert(id.0);
        self.live = self.live.saturating_sub(1);
        if let Some(c) = &self.counters {
            c.cancelled.inc();
        }
        true
    }

    /// Timestamp of the next live event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skim();
        self.heap.peek().map(|e| e.time)
    }

    /// Pop the next live event.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        self.skim();
        let entry = self.heap.pop()?;
        self.live -= 1;
        self.last_popped = entry.time;
        self.fired.insert(entry.seq);
        if let Some(c) = &self.counters {
            c.processed.inc();
        }
        Some(ScheduledEvent { time: entry.time, id: EventId(entry.seq), payload: entry.payload })
    }

    /// Discard cancelled entries sitting at the top of the heap.
    fn skim(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.cancelled.remove(&top.seq) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }

    /// Drop all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.cancelled.clear();
        self.live = 0;
    }
}

impl<E> EventQueue<E> {
    /// Test/diagnostic helper: true if `id` has already fired.
    pub fn has_fired(&self, id: EventId) -> bool {
        self.fired.contains(&id.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), "c");
        q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn same_time_pops_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_suppresses_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        assert!(q.cancel(a));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().payload, "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn double_cancel_and_cancel_after_fire_return_false() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(10), "a");
        assert!(q.cancel(a));
        assert!(!q.cancel(a));

        let b = q.schedule(t(20), "b");
        assert_eq!(q.pop().unwrap().payload, "b");
        assert!(!q.cancel(b));
        assert!(q.has_fired(b));
    }

    #[test]
    fn cancel_none_is_noop() {
        let mut q = EventQueue::<()>::new();
        assert!(!q.cancel(EventId::NONE));
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(20)));
    }

    #[test]
    fn len_tracks_live_events() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        let a = q.schedule(t(1), 1);
        q.schedule(t(2), 2);
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(t(1), 1);
        q.schedule(t(2), 2);
        q.clear();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    #[cfg(debug_assertions)]
    fn scheduling_into_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule(t(10), "a");
        q.pop();
        q.schedule(t(5), "late");
    }
}
