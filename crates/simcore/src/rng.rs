//! Deterministic random number generation for simulations.
//!
//! Everything stochastic in the workspace (workload jitter, OS-noise
//! arrivals, message latency jitter) draws from a [`SimRng`] seeded from the
//! experiment configuration, so runs are exactly reproducible.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// A seeded RNG with the handful of distributions the simulators need.
///
/// Wraps `rand::rngs::SmallRng`; the wrapper exists so the rest of the
/// workspace depends on a stable, minimal interface rather than on `rand`'s
/// trait soup, and so distribution helpers (exponential, bounded normal) live
/// in one audited place.
#[derive(Clone, Debug)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Create an RNG from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng { inner: SmallRng::seed_from_u64(seed) }
    }

    /// Derive an independent child RNG; used to give each task / noise source
    /// its own stream so adding one source does not perturb the others.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        // splitmix-style mixing of a fresh draw with the salt.
        let base = self.inner.random::<u64>();
        let mut z = base ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        SimRng::seed_from_u64(z ^ (z >> 31))
    }

    /// Uniform in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// Uniform integer in `[lo, hi)`. `hi` must be > `lo`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(hi > lo, "empty range");
        self.inner.random_range(lo..hi)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(hi > lo, "empty range");
        self.inner.random_range(lo..hi)
    }

    /// Exponentially distributed value with the given mean (inter-arrival
    /// times of Poisson processes; OS-noise model).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        let u = 1.0 - self.unit(); // in (0, 1]
        -mean * u.ln()
    }

    /// Normally distributed value (Box–Muller), clamped to `[lo, hi]`.
    /// Used for bounded per-iteration compute jitter.
    pub fn normal_clamped(&mut self, mean: f64, stddev: f64, lo: f64, hi: f64) -> f64 {
        assert!(stddev >= 0.0);
        let u1 = (1.0 - self.unit()).max(f64::MIN_POSITIVE);
        let u2 = self.unit();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (mean + stddev * z).clamp(lo, hi)
    }

    /// Bernoulli trial.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.range_u64(0, 1_000_000), b.range_u64(0, 1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.unit() == b.unit()).count();
        assert!(same < 4, "streams should diverge");
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut root1 = SimRng::seed_from_u64(7);
        let mut root2 = SimRng::seed_from_u64(7);
        let mut c1 = root1.fork(0xABCD);
        let mut c2 = root2.fork(0xABCD);
        for _ in 0..32 {
            assert_eq!(c1.unit(), c2.unit());
        }
    }

    #[test]
    fn exponential_mean_is_roughly_right() {
        let mut rng = SimRng::seed_from_u64(3);
        let n = 20_000;
        let mean = 5.0;
        let sum: f64 = (0..n).map(|_| rng.exponential(mean)).sum();
        let observed = sum / n as f64;
        assert!((observed - mean).abs() < 0.2, "observed mean {observed}");
    }

    #[test]
    fn normal_clamped_respects_bounds() {
        let mut rng = SimRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let v = rng.normal_clamped(0.0, 10.0, -1.0, 1.0);
            assert!((-1.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn unit_in_half_open_interval() {
        let mut rng = SimRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let v = rng.unit();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from_u64(6);
        assert!(!(0..100).any(|_| rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
    }
}
