//! Versioned, checksummed, byte-stable state snapshots (DESIGN.md §14).
//!
//! A snapshot is a flat little-endian byte stream wrapped in a fixed
//! header:
//!
//! ```text
//! magic "HSNP" | version u32 | payload_len u64 | fnv1a(payload) u64 | payload
//! ```
//!
//! The encoding is deliberately primitive — length-prefixed sequences of
//! fixed-width integers, floats stored as their IEEE-754 bit patterns —
//! so the same state always produces the same bytes, on any host, at any
//! thread count. That byte-stability is what makes "resume is
//! byte-identical to the uninterrupted run" a testable contract: two
//! snapshots of equal state compare equal as byte strings, and a trace
//! produced after [`Snapshot::restore`] can be diffed against the
//! original run directly.
//!
//! Readers verify the magic, version, length, and FNV-1a checksum before
//! yielding a single byte of payload ([`SnapshotReader::new`]). The
//! unchecked constructor ([`SnapshotReader::new_unchecked`]) exists only
//! for forensic tooling that wants to poke at a corrupt file; shipping
//! code must never restore state through it — simverify rule SV013
//! enforces exactly that.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

use crate::time::{SimDuration, SimTime};

/// First four bytes of every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"HSNP";

/// Format version; bump on any incompatible encoding change. Readers
/// refuse other versions rather than guessing.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Byte length of the fixed header (magic + version + length + checksum).
pub const SNAPSHOT_HEADER_LEN: usize = 4 + 4 + 8 + 8;

/// 64-bit FNV-1a — the same fingerprint the trace-hash harness uses, so
/// one hash function covers both artifacts.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Why a snapshot could not be decoded. Every variant is a *typed*
/// outcome: corruption is detected and reported, never panicked on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// Fewer bytes than the fixed header, or the payload is cut short.
    Truncated { needed: usize, have: usize },
    /// The first four bytes are not `HSNP` — not a snapshot at all.
    BadMagic,
    /// A snapshot, but from an incompatible format version.
    BadVersion { found: u32, supported: u32 },
    /// Header checksum does not match the payload bytes.
    ChecksumMismatch { expected: u64, found: u64 },
    /// Structurally invalid payload (bad tag, length overflow, trailing
    /// bytes, non-UTF-8 string...).
    Malformed(&'static str),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated { needed, have } => {
                write!(f, "snapshot truncated: need {needed} bytes, have {have}")
            }
            SnapshotError::BadMagic => write!(f, "not a snapshot (bad magic)"),
            SnapshotError::BadVersion { found, supported } => {
                write!(f, "snapshot version {found} unsupported (this build reads v{supported})")
            }
            SnapshotError::ChecksumMismatch { expected, found } => write!(
                f,
                "snapshot checksum mismatch: header says {expected:016x}, payload hashes to {found:016x}"
            ),
            SnapshotError::Malformed(what) => write!(f, "malformed snapshot payload: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Append-only encoder. Build the payload with the `put_*` methods, then
/// [`SnapshotWriter::finish`] wraps it in the checksummed header.
#[derive(Default)]
pub struct SnapshotWriter {
    buf: Vec<u8>,
}

impl SnapshotWriter {
    pub fn new() -> SnapshotWriter {
        SnapshotWriter { buf: Vec::new() }
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Floats are stored as raw bit patterns: restore reproduces the
    /// exact value, including -0.0 and every NaN payload.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Sequence lengths and other host-width values travel as u64.
    pub fn put_len(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    pub fn put_str(&mut self, s: &str) {
        self.put_len(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Encode any [`Snapshot`] value in place.
    pub fn put<T: Snapshot>(&mut self, v: &T) {
        v.snapshot(self);
    }

    /// Payload bytes written so far (header not included).
    pub fn payload(&self) -> &[u8] {
        &self.buf
    }

    /// Wrap the payload in the versioned, checksummed header.
    pub fn finish(self) -> Vec<u8> {
        let mut out = Vec::with_capacity(SNAPSHOT_HEADER_LEN + self.buf.len());
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.buf.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv1a(&self.buf).to_le_bytes());
        out.extend_from_slice(&self.buf);
        out
    }
}

/// Cursor over a verified snapshot payload.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    payload: &'a [u8],
    pos: usize,
}

impl<'a> SnapshotReader<'a> {
    /// Open a snapshot, verifying magic, version, length, and checksum
    /// before any payload is exposed. This is the only constructor
    /// shipping code may use (simverify SV013).
    pub fn new(bytes: &'a [u8]) -> Result<SnapshotReader<'a>, SnapshotError> {
        let (payload, expected) = Self::parse_header(bytes)?;
        let found = fnv1a(payload);
        if found != expected {
            return Err(SnapshotError::ChecksumMismatch { expected, found });
        }
        Ok(SnapshotReader { payload, pos: 0 })
    }

    /// Open a snapshot *without* checksum verification. Forensics only:
    /// lets tooling inspect a corrupt file's readable prefix. Restoring
    /// live state through this constructor is forbidden (SV013) — a
    /// silently-wrong resume is strictly worse than a failed one.
    pub fn new_unchecked(bytes: &'a [u8]) -> Result<SnapshotReader<'a>, SnapshotError> {
        let (payload, _) = Self::parse_header(bytes)?;
        Ok(SnapshotReader { payload, pos: 0 })
    }

    fn parse_header(bytes: &'a [u8]) -> Result<(&'a [u8], u64), SnapshotError> {
        if bytes.len() < SNAPSHOT_HEADER_LEN {
            return Err(SnapshotError::Truncated { needed: SNAPSHOT_HEADER_LEN, have: bytes.len() });
        }
        if bytes[..4] != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::BadVersion { found: version, supported: SNAPSHOT_VERSION });
        }
        let mut len8 = [0u8; 8];
        len8.copy_from_slice(&bytes[8..16]);
        let payload_len = u64::from_le_bytes(len8) as usize;
        let mut sum8 = [0u8; 8];
        sum8.copy_from_slice(&bytes[16..24]);
        let checksum = u64::from_le_bytes(sum8);
        let have = bytes.len() - SNAPSHOT_HEADER_LEN;
        if have < payload_len {
            return Err(SnapshotError::Truncated { needed: payload_len, have });
        }
        if have > payload_len {
            return Err(SnapshotError::Malformed("trailing bytes after payload"));
        }
        Ok((&bytes[SNAPSHOT_HEADER_LEN..], checksum))
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(SnapshotError::Malformed("length overflow"))?;
        if end > self.payload.len() {
            return Err(SnapshotError::Truncated { needed: end, have: self.payload.len() });
        }
        let s = &self.payload[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub fn get_u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    pub fn get_u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub fn get_u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    pub fn get_i64(&mut self) -> Result<i64, SnapshotError> {
        Ok(self.get_u64()? as i64)
    }

    pub fn get_f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    pub fn get_bool(&mut self) -> Result<bool, SnapshotError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::Malformed("bool tag out of range")),
        }
    }

    pub fn get_len(&mut self) -> Result<usize, SnapshotError> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| SnapshotError::Malformed("length exceeds usize"))
    }

    pub fn get_str(&mut self) -> Result<String, SnapshotError> {
        let n = self.get_len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapshotError::Malformed("string is not UTF-8"))
    }

    /// Decode any [`Snapshot`] value in place.
    pub fn get<T: Snapshot>(&mut self) -> Result<T, SnapshotError> {
        T::restore(self)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.payload.len() - self.pos
    }

    /// Assert the payload was consumed exactly — leftover bytes mean the
    /// reader and writer disagree about the schema.
    pub fn finish(self) -> Result<(), SnapshotError> {
        if self.pos != self.payload.len() {
            return Err(SnapshotError::Malformed("payload has unconsumed bytes"));
        }
        Ok(())
    }
}

/// Byte-stable encode/decode for one value. Implementations must be
/// exact inverses: `restore(snapshot(x)) == x`, and equal values must
/// produce equal bytes (the determinism contract rides on this — never
/// iterate an unordered container inside `snapshot`).
pub trait Snapshot: Sized {
    fn snapshot(&self, w: &mut SnapshotWriter);
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError>;
}

impl Snapshot for u8 {
    fn snapshot(&self, w: &mut SnapshotWriter) {
        w.put_u8(*self);
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        r.get_u8()
    }
}

impl Snapshot for i8 {
    fn snapshot(&self, w: &mut SnapshotWriter) {
        w.put_u8(*self as u8);
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(r.get_u8()? as i8)
    }
}

impl Snapshot for u32 {
    fn snapshot(&self, w: &mut SnapshotWriter) {
        w.put_u32(*self);
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        r.get_u32()
    }
}

impl Snapshot for u64 {
    fn snapshot(&self, w: &mut SnapshotWriter) {
        w.put_u64(*self);
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        r.get_u64()
    }
}

impl Snapshot for i64 {
    fn snapshot(&self, w: &mut SnapshotWriter) {
        w.put_i64(*self);
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        r.get_i64()
    }
}

impl Snapshot for usize {
    fn snapshot(&self, w: &mut SnapshotWriter) {
        w.put_len(*self);
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        r.get_len()
    }
}

impl Snapshot for bool {
    fn snapshot(&self, w: &mut SnapshotWriter) {
        w.put_bool(*self);
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        r.get_bool()
    }
}

impl Snapshot for f64 {
    fn snapshot(&self, w: &mut SnapshotWriter) {
        w.put_f64(*self);
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        r.get_f64()
    }
}

impl Snapshot for String {
    fn snapshot(&self, w: &mut SnapshotWriter) {
        w.put_str(self);
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        r.get_str()
    }
}

impl Snapshot for SimTime {
    fn snapshot(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.0);
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(SimTime(r.get_u64()?))
    }
}

impl Snapshot for SimDuration {
    fn snapshot(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.0);
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(SimDuration(r.get_u64()?))
    }
}

impl<T: Snapshot> Snapshot for Option<T> {
    fn snapshot(&self, w: &mut SnapshotWriter) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.snapshot(w);
            }
        }
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::restore(r)?)),
            _ => Err(SnapshotError::Malformed("Option tag out of range")),
        }
    }
}

impl<T: Snapshot> Snapshot for Vec<T> {
    fn snapshot(&self, w: &mut SnapshotWriter) {
        w.put_len(self.len());
        for v in self {
            v.snapshot(w);
        }
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let n = r.get_len()?;
        let mut out = Vec::new();
        for _ in 0..n {
            out.push(T::restore(r)?);
        }
        Ok(out)
    }
}

impl<T: Snapshot> Snapshot for VecDeque<T> {
    fn snapshot(&self, w: &mut SnapshotWriter) {
        w.put_len(self.len());
        for v in self {
            v.snapshot(w);
        }
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let n = r.get_len()?;
        let mut out = VecDeque::new();
        for _ in 0..n {
            out.push_back(T::restore(r)?);
        }
        Ok(out)
    }
}

impl<T: Snapshot + Ord> Snapshot for BTreeSet<T> {
    fn snapshot(&self, w: &mut SnapshotWriter) {
        w.put_len(self.len());
        for v in self {
            v.snapshot(w);
        }
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let n = r.get_len()?;
        let mut out = BTreeSet::new();
        for _ in 0..n {
            out.insert(T::restore(r)?);
        }
        Ok(out)
    }
}

impl<K: Snapshot + Ord, V: Snapshot> Snapshot for BTreeMap<K, V> {
    fn snapshot(&self, w: &mut SnapshotWriter) {
        w.put_len(self.len());
        for (k, v) in self {
            k.snapshot(w);
            v.snapshot(w);
        }
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let n = r.get_len()?;
        let mut out = BTreeMap::new();
        for _ in 0..n {
            let k = K::restore(r)?;
            let v = V::restore(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<A: Snapshot, B: Snapshot> Snapshot for (A, B) {
    fn snapshot(&self, w: &mut SnapshotWriter) {
        self.0.snapshot(w);
        self.1.snapshot(w);
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok((A::restore(r)?, B::restore(r)?))
    }
}

impl<A: Snapshot, B: Snapshot, C: Snapshot> Snapshot for (A, B, C) {
    fn snapshot(&self, w: &mut SnapshotWriter) {
        self.0.snapshot(w);
        self.1.snapshot(w);
        self.2.snapshot(w);
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok((A::restore(r)?, B::restore(r)?, C::restore(r)?))
    }
}

impl<A: Snapshot, B: Snapshot, C: Snapshot, D: Snapshot> Snapshot for (A, B, C, D) {
    fn snapshot(&self, w: &mut SnapshotWriter) {
        self.0.snapshot(w);
        self.1.snapshot(w);
        self.2.snapshot(w);
        self.3.snapshot(w);
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok((A::restore(r)?, B::restore(r)?, C::restore(r)?, D::restore(r)?))
    }
}

impl Snapshot for telemetry::HistogramStats {
    fn snapshot(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.count);
        w.put_u64(self.sum);
        w.put_u64(self.min);
        w.put_u64(self.max);
        self.buckets.snapshot(w);
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(telemetry::HistogramStats {
            count: r.get_u64()?,
            sum: r.get_u64()?,
            min: r.get_u64()?,
            max: r.get_u64()?,
            buckets: Vec::restore(r)?,
        })
    }
}

impl Snapshot for telemetry::MetricValue {
    fn snapshot(&self, w: &mut SnapshotWriter) {
        match self {
            telemetry::MetricValue::Counter(v) => {
                w.put_u8(0);
                w.put_u64(*v);
            }
            telemetry::MetricValue::Gauge(v) => {
                w.put_u8(1);
                w.put_i64(*v);
            }
            telemetry::MetricValue::Histogram(h) => {
                w.put_u8(2);
                h.snapshot(w);
            }
        }
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(match r.get_u8()? {
            0 => telemetry::MetricValue::Counter(r.get_u64()?),
            1 => telemetry::MetricValue::Gauge(r.get_i64()?),
            2 => telemetry::MetricValue::Histogram(telemetry::HistogramStats::restore(r)?),
            _ => return Err(SnapshotError::Malformed("MetricValue tag out of range")),
        })
    }
}

impl Snapshot for telemetry::MetricsSnapshot {
    fn snapshot(&self, w: &mut SnapshotWriter) {
        self.metrics.snapshot(w);
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(telemetry::MetricsSnapshot { metrics: Vec::restore(r)? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Snapshot + PartialEq + std::fmt::Debug>(v: T) {
        let mut w = SnapshotWriter::new();
        w.put(&v);
        let bytes = w.finish();
        let mut r = SnapshotReader::new(&bytes).expect("checked open");
        let back: T = r.get().expect("decode");
        assert_eq!(back, v);
        r.finish().expect("fully consumed");
    }

    #[test]
    fn metrics_snapshot_round_trips() {
        let registry = telemetry::MetricsRegistry::new();
        registry.counter("batch.jobs.completed").add(5);
        registry.gauge("batch.queue.peak").set(11);
        registry.histogram("batch.wait.us").record(321);
        roundtrip(registry.snapshot());
        roundtrip(telemetry::MetricsSnapshot::default());
    }

    #[test]
    fn primitives_round_trip() {
        roundtrip(0u8);
        roundtrip(-5i8);
        roundtrip(123456789u32);
        roundtrip(u64::MAX);
        roundtrip(-42i64);
        roundtrip(usize::MAX);
        roundtrip(true);
        roundtrip(core::f64::consts::PI);
        roundtrip(-0.0f64);
        roundtrip("héllo wörld".to_string());
        roundtrip(SimTime(17));
        roundtrip(SimDuration(99));
    }

    #[test]
    fn nan_bit_pattern_survives() {
        let v = f64::from_bits(0x7ff8_dead_beef_0001);
        let mut w = SnapshotWriter::new();
        w.put_f64(v);
        let bytes = w.finish();
        let mut r = SnapshotReader::new(&bytes).unwrap();
        assert_eq!(r.get_f64().unwrap().to_bits(), v.to_bits());
    }

    #[test]
    fn containers_round_trip() {
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Option::<u64>::None);
        roundtrip(Some(7u64));
        roundtrip(VecDeque::from(vec![1.5f64, -2.5]));
        roundtrip(BTreeSet::from([3u64, 1, 2]));
        roundtrip(BTreeMap::from([(1u64, "a".to_string()), (2, "b".to_string())]));
        roundtrip((1u32, 2u64, true, -1i64));
    }

    #[test]
    fn equal_state_equal_bytes() {
        let enc = |m: &BTreeMap<u64, f64>| {
            let mut w = SnapshotWriter::new();
            w.put(m);
            w.finish()
        };
        // Different insertion orders, same map — same bytes.
        let mut a = BTreeMap::new();
        a.insert(2u64, 0.5);
        a.insert(1u64, 1.5);
        let mut b = BTreeMap::new();
        b.insert(1u64, 1.5);
        b.insert(2u64, 0.5);
        assert_eq!(enc(&a), enc(&b));
    }

    #[test]
    fn corruption_is_detected() {
        let mut w = SnapshotWriter::new();
        w.put_u64(42);
        w.put_str("state");
        let mut bytes = w.finish();
        // Flip one payload byte: checked open fails with a checksum error.
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        match SnapshotReader::new(&bytes) {
            Err(SnapshotError::ChecksumMismatch { .. }) => {}
            other => panic!("want checksum mismatch, got {other:?}"),
        }
        // The forensic constructor still opens it.
        assert!(SnapshotReader::new_unchecked(&bytes).is_ok());
    }

    #[test]
    fn truncation_bad_magic_and_version_are_detected() {
        let mut w = SnapshotWriter::new();
        w.put_u64(42);
        let bytes = w.finish();

        match SnapshotReader::new(&bytes[..10]) {
            Err(SnapshotError::Truncated { .. }) => {}
            other => panic!("want truncated, got {other:?}"),
        }
        match SnapshotReader::new(&bytes[..bytes.len() - 4]) {
            Err(SnapshotError::Truncated { .. }) => {}
            other => panic!("want truncated payload, got {other:?}"),
        }

        let mut magic = bytes.clone();
        magic[0] = b'X';
        match SnapshotReader::new(&magic) {
            Err(SnapshotError::BadMagic) => {}
            other => panic!("want bad magic, got {other:?}"),
        }

        let mut version = bytes.clone();
        version[4] = 99;
        match SnapshotReader::new(&version) {
            Err(SnapshotError::BadVersion { found: 99, supported: SNAPSHOT_VERSION }) => {}
            other => panic!("want bad version, got {other:?}"),
        }
    }

    #[test]
    fn trailing_bytes_are_malformed() {
        let mut w = SnapshotWriter::new();
        w.put_u64(1);
        let mut bytes = w.finish();
        bytes.push(0);
        match SnapshotReader::new(&bytes) {
            Err(SnapshotError::Malformed(_)) => {}
            other => panic!("want malformed, got {other:?}"),
        }
    }

    #[test]
    fn unconsumed_payload_fails_finish() {
        let mut w = SnapshotWriter::new();
        w.put_u64(1);
        w.put_u64(2);
        let bytes = w.finish();
        let mut r = SnapshotReader::new(&bytes).unwrap();
        let _ = r.get_u64().unwrap();
        assert!(r.finish().is_err());
    }
}
