//! Small online statistics used by scheduler metrics and the harness.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Welford's online mean/variance accumulator.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    pub fn new() -> Self {
        OnlineStats { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merge another accumulator into this one (Chan's parallel algorithm).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Fixed-bucket histogram over `[lo, hi)` with overflow/underflow buckets.
/// Used for scheduler-latency distributions.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// # Panics
    /// If `hi <= lo` or `buckets == 0`.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(hi > lo && buckets > 0, "invalid histogram bounds");
        Histogram { lo, hi, buckets: vec![0; buckets], underflow: 0, overflow: 0, count: 0 }
    }

    pub fn record(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.buckets.len() as f64;
            let idx = ((x - self.lo) / width) as usize;
            let idx = idx.min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn bucket_counts(&self) -> &[u64] {
        &self.buckets
    }

    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Approximate quantile (inverse CDF) from bucket midpoints.
    /// Returns `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.count as f64).ceil() as u64;
        let mut seen = self.underflow;
        if seen >= target && self.underflow > 0 {
            return Some(self.lo);
        }
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(self.lo + (i as f64 + 0.5) * width);
            }
        }
        Some(self.hi)
    }
}

/// Tracks the busy/total ratio of a resource over simulated time.
///
/// This is exactly the metric the paper's Load Imbalance Detector uses:
/// `U = Σ tR / Σ ti` where `tR` is running time and `ti` is iteration
/// (running + waiting) time.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct UtilizationTracker {
    busy: SimDuration,
    total: SimDuration,
}

impl UtilizationTracker {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add_busy(&mut self, d: SimDuration) {
        self.busy += d;
        self.total += d;
    }

    pub fn add_idle(&mut self, d: SimDuration) {
        self.total += d;
    }

    pub fn busy(&self) -> SimDuration {
        self.busy
    }

    pub fn total(&self) -> SimDuration {
        self.total
    }

    /// Utilization in `[0, 1]`; `0` when nothing has been recorded.
    pub fn utilization(&self) -> f64 {
        if self.total.is_zero() {
            0.0
        } else {
            self.busy.as_nanos() as f64 / self.total.as_nanos() as f64
        }
    }

    /// Utilization as the percentage the paper's tables report.
    pub fn percent(&self) -> f64 {
        self.utilization() * 100.0
    }

    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// Convenience for measuring a span of simulated wall-clock time.
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    start: SimTime,
}

impl Stopwatch {
    pub fn start_at(t: SimTime) -> Self {
        Stopwatch { start: t }
    }

    pub fn elapsed(&self, now: SimTime) -> SimDuration {
        now.saturating_since(self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_stats_empty() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        xs.iter().for_each(|&x| whole.push(x));

        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        xs[..37].iter().for_each(|&x| left.push(x));
        xs[37..].iter().for_each(|&x| right.push(x));
        left.merge(&right);

        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(-1.0);
        h.record(0.5);
        h.record(9.5);
        h.record(25.0);
        assert_eq!(h.count(), 4);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.bucket_counts()[0], 1);
        assert_eq!(h.bucket_counts()[9], 1);
    }

    #[test]
    fn histogram_quantile() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.record(i as f64);
        }
        let median = h.quantile(0.5).unwrap();
        assert!((median - 50.0).abs() < 2.0, "median {median}");
        assert!(h.quantile(0.0).is_some());
        assert!(Histogram::new(0.0, 1.0, 4).quantile(0.5).is_none());
    }

    #[test]
    fn utilization_tracker_matches_paper_metric() {
        let mut u = UtilizationTracker::new();
        u.add_busy(SimDuration::from_millis(25));
        u.add_idle(SimDuration::from_millis(75));
        assert!((u.utilization() - 0.25).abs() < 1e-12);
        assert!((u.percent() - 25.0).abs() < 1e-9);
        u.reset();
        assert_eq!(u.utilization(), 0.0);
    }

    #[test]
    fn stopwatch_elapsed() {
        let t0 = SimTime::ZERO + SimDuration::from_millis(5);
        let w = Stopwatch::start_at(t0);
        assert_eq!(w.elapsed(t0 + SimDuration::from_millis(7)), SimDuration::from_millis(7));
        assert_eq!(w.elapsed(SimTime::ZERO), SimDuration::ZERO);
    }
}
