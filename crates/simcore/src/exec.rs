//! Deterministic parallel executor: a scoped-thread work pool for
//! embarrassingly parallel simulation work (per-node kernel runs).
//!
//! # Determinism contract
//!
//! [`Pool::run`] executes a batch of `Send` closures and returns their
//! results **in submission order**, whatever the thread count. Workers
//! claim tasks through one atomic cursor, so *which* worker runs a task
//! (and when, in wall-clock terms) is nondeterministic — but as long as
//! every task is a pure function of its captured inputs, the returned
//! `Vec` is bit-identical to what a serial loop over the same closures
//! would produce. Callers therefore get order-stable reductions for
//! free: fold the result vector left-to-right and the outcome cannot
//! depend on the thread count.
//!
//! With `threads == 1` the pool spawns nothing and runs the closures
//! inline, in order — exactly the pre-pool serial behaviour, with no
//! thread or synchronization overhead.
//!
//! # Telemetry
//!
//! A pool optionally carries [`PoolCounters`] registered on a
//! [`telemetry::MetricsRegistry`]: batches and tasks executed
//! (deterministic) plus total worker busy nanoseconds (host wall-clock,
//! *not* simulated time — never fold it into simulation results or
//! byte-identity checks).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use telemetry::{Counter, MetricsRegistry};

/// Telemetry handles for one executor pool.
#[derive(Clone)]
pub struct PoolCounters {
    /// Batches submitted through [`Pool::run`].
    pub batches: Counter,
    /// Tasks executed (sum of batch sizes) — deterministic.
    pub tasks: Counter,
    /// Total wall-clock nanoseconds workers spent inside task closures.
    /// Host-side measurement; excluded from determinism comparisons.
    pub busy_ns: Counter,
    /// Supervised attempts beyond the first (retries after a panic) —
    /// deterministic when the underlying failures are injected.
    pub retries: Counter,
    /// Supervised tasks whose every attempt panicked (typed
    /// [`TaskFailure::Quarantined`] outcomes).
    pub quarantined: Counter,
    /// Supervised tasks abandoned by the wall-clock watchdog (typed
    /// [`TaskFailure::TaskTimeout`] outcomes).
    pub timeouts: Counter,
}

impl PoolCounters {
    /// Register the pool counters under `prefix` (e.g. `exec.pool`).
    pub fn register(registry: &MetricsRegistry, prefix: &str) -> PoolCounters {
        PoolCounters {
            batches: registry.counter(&format!("{prefix}.batches")),
            tasks: registry.counter(&format!("{prefix}.tasks")),
            busy_ns: registry.counter(&format!("{prefix}.busy_ns")),
            retries: registry.counter(&format!("{prefix}.retries")),
            quarantined: registry.counter(&format!("{prefix}.quarantined")),
            timeouts: registry.counter(&format!("{prefix}.timeouts")),
        }
    }
}

/// Typed failure of one supervised task — the supervisor's terminal
/// outcomes, mirroring how `ClusterOutcome` records degraded-but-clean
/// node failures instead of panicking the fleet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TaskFailure {
    /// Every permitted attempt panicked; the task is quarantined and its
    /// slot reports this typed outcome instead of unwinding the pool.
    Quarantined {
        /// Attempts made before giving up (== the policy's `max_attempts`).
        attempts: u32,
    },
    /// The wall-clock watchdog expired before the attempt finished. The
    /// hung attempt is abandoned (its thread is detached; a late result
    /// is discarded) and the slot reports this typed outcome instead of
    /// wedging the run.
    TaskTimeout {
        /// The watchdog limit that fired, in milliseconds.
        limit_ms: u64,
    },
}

impl std::fmt::Display for TaskFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaskFailure::Quarantined { attempts } => {
                write!(f, "quarantined after {attempts} panicking attempt(s)")
            }
            TaskFailure::TaskTimeout { limit_ms } => {
                write!(f, "hung past the {limit_ms}ms watchdog")
            }
        }
    }
}

/// Result of one supervised task: the value, or a typed failure.
pub type Supervised<T> = Result<T, TaskFailure>;

/// Retry/watchdog policy for [`Pool::run_supervised`].
#[derive(Clone, Copy, Debug)]
pub struct SupervisePolicy {
    /// Total attempts per task before quarantine; clamped to at least 1.
    pub max_attempts: u32,
    /// Per-attempt wall-clock watchdog. `None` disables the watchdog and
    /// runs attempts on the claiming worker itself; `Some` runs each
    /// attempt on a dedicated thread so a hung attempt can be abandoned.
    pub timeout: Option<Duration>,
}

impl Default for SupervisePolicy {
    fn default() -> Self {
        SupervisePolicy { max_attempts: 3, timeout: None }
    }
}

/// What one attempt did, as seen by the supervisor loop.
enum Attempt<T> {
    Done(T),
    Panicked,
    Hung { limit_ms: u64 },
}

/// A fixed-width scoped-thread work pool. Cheap to construct (it holds no
/// threads between batches); every [`Pool::run`] call opens one
/// `std::thread::scope`, so borrowed task captures work naturally.
pub struct Pool {
    threads: usize,
    counters: Option<PoolCounters>,
}

impl Pool {
    /// A pool running `threads` workers per batch; 0 is clamped to 1.
    pub fn new(threads: usize) -> Pool {
        Pool { threads: threads.max(1), counters: None }
    }

    /// The serial pool: tasks run inline, in order.
    pub fn serial() -> Pool {
        Pool::new(1)
    }

    /// [`Pool::new`] with telemetry attached.
    pub fn with_counters(threads: usize, counters: PoolCounters) -> Pool {
        Pool { threads: threads.max(1), counters: Some(counters) }
    }

    /// Worker width of this pool.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run every task and return the results in submission order.
    ///
    /// Results are byte-identical to a serial `tasks.map(|f| f())` as long
    /// as each task is a pure function of its captures. A panicking task
    /// propagates the panic to the caller, as it would serially.
    ///
    /// Purity is enforced statically: task closures must only call
    /// functions rooted at a `PURITY-ROOT` entry point (or a `Balancer`
    /// impl), which puts their whole call tree under the SV006–SV012
    /// reachability rules (`simverify::graph`, DESIGN.md §13). When adding
    /// a new kind of pool workload, annotate its entry function.
    pub fn run<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let n = tasks.len();
        if let Some(c) = &self.counters {
            c.batches.inc();
            c.tasks.add(n as u64);
        }
        if self.threads <= 1 || n <= 1 {
            return self.run_inline(tasks);
        }

        // Self-scheduling: workers claim task indices through one atomic
        // cursor; each slot is taken exactly once, and every worker tags
        // results with the submission index so the merge below restores
        // submission order regardless of which worker ran what.
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<F>>> =
            tasks.into_iter().map(|f| Mutex::new(Some(f))).collect();
        let workers = self.threads.min(n);
        let mut merged: Vec<Option<T>> = (0..n).map(|_| None).collect();
        let mut busy_total: u64 = 0;

        let first_panic = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let cursor = &cursor;
                    let slots = &slots;
                    scope.spawn(move || {
                        let mut produced: Vec<(usize, T)> = Vec::new();
                        let mut busy_ns: u64 = 0;
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            // INVARIANT: index i was claimed exclusively by
                            // this fetch_add, so the slot still holds its
                            // task; a poisoned lock cannot corrupt an
                            // Option, recover its contents.
                            let task = slots[i]
                                .lock()
                                .unwrap_or_else(|p| p.into_inner())
                                .take();
                            let Some(task) = task else { continue };
                            let started = Instant::now();
                            let value = task();
                            busy_ns += started.elapsed().as_nanos() as u64;
                            produced.push((i, value));
                        }
                        (produced, busy_ns)
                    })
                })
                .collect();
            // Join *every* worker before deciding the batch's fate: an
            // early resume_unwind on the first panicked handle would skip
            // the surviving workers' merges and the busy_ns flush below,
            // leaving PoolCounters snapshots inconsistent mid-batch.
            let mut first_panic: Option<Box<dyn std::any::Any + Send>> = None;
            for handle in handles {
                match handle.join() {
                    Ok((produced, busy_ns)) => {
                        busy_total += busy_ns;
                        for (i, value) in produced {
                            merged[i] = Some(value);
                        }
                    }
                    // A worker panicked mid-task: remember the first
                    // payload, keep draining the rest.
                    Err(payload) => {
                        if first_panic.is_none() {
                            first_panic = Some(payload);
                        }
                    }
                }
            }
            first_panic
        });

        // Counters are finalized before any unwind reaches the caller, so
        // a telemetry snapshot taken after catching the panic still sees
        // the surviving workers' busy time.
        if let Some(c) = &self.counters {
            c.busy_ns.add(busy_total);
        }
        if let Some(payload) = first_panic {
            // Re-raise on the caller's thread so a panicking task behaves
            // as it would have serially.
            std::panic::resume_unwind(payload);
        }
        merged
            .into_iter()
            .map(|slot| {
                // INVARIANT: every index below the cursor was claimed and
                // produced exactly once; a hole would mean a worker died,
                // which resume_unwind above already surfaced.
                slot.expect("every submitted task produced a result")
            })
            .collect()
    }

    fn run_inline<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        F: FnOnce() -> T,
    {
        let started = Instant::now();
        let out: Vec<T> = tasks.into_iter().map(|f| f()).collect();
        if let Some(c) = &self.counters {
            c.busy_ns.add(started.elapsed().as_nanos() as u64);
        }
        out
    }

    /// Run every task under supervision: a panicking attempt is caught
    /// (`catch_unwind`) and retried up to `policy.max_attempts` times; a
    /// task that keeps panicking is *quarantined* into a typed
    /// [`TaskFailure::Quarantined`] outcome, and — when a watchdog is
    /// configured — a hung attempt is abandoned into a typed
    /// [`TaskFailure::TaskTimeout`]. The supervisor never panics the
    /// batch and never wedges the run.
    ///
    /// Each attempt receives its 0-based attempt index, so deterministic
    /// fault injection ("panic on the first k attempts") stays a pure
    /// function of (task, attempt) — which keeps supervised outcomes, and
    /// therefore the merged result vector, byte-identical at any thread
    /// count. Results come back in submission order like [`Pool::run`].
    pub fn run_supervised<T, F>(&self, tasks: Vec<F>, policy: SupervisePolicy) -> Vec<Supervised<T>>
    where
        T: Send + 'static,
        F: Fn(u32) -> T + Send + Sync + 'static,
    {
        let max_attempts = policy.max_attempts.max(1);
        let timeout = policy.timeout;
        let wrapped: Vec<_> = tasks
            .into_iter()
            .map(|task| {
                let task = Arc::new(task);
                move || supervise_one(task, max_attempts, timeout)
            })
            .collect();
        let outcomes = self.run(wrapped);
        if let Some(c) = &self.counters {
            for (outcome, attempts) in &outcomes {
                c.retries.add(attempts.saturating_sub(1) as u64);
                match outcome {
                    Err(TaskFailure::Quarantined { .. }) => c.quarantined.inc(),
                    Err(TaskFailure::TaskTimeout { .. }) => c.timeouts.inc(),
                    Ok(_) => {}
                }
            }
        }
        outcomes.into_iter().map(|(outcome, _)| outcome).collect()
    }
}

/// Drive one task through the retry/quarantine/watchdog state machine.
/// Returns the outcome plus the number of attempts made (for telemetry).
fn supervise_one<T, F>(
    task: Arc<F>,
    max_attempts: u32,
    timeout: Option<Duration>,
) -> (Supervised<T>, u32)
where
    T: Send + 'static,
    F: Fn(u32) -> T + Send + Sync + 'static,
{
    for attempt in 0..max_attempts {
        match run_attempt(&task, attempt, timeout) {
            Attempt::Done(v) => return (Ok(v), attempt + 1),
            Attempt::Panicked => continue,
            // A hung task is not retried: the next attempt would most
            // likely hang too, and the caller's watchdog budget is spent.
            Attempt::Hung { limit_ms } => {
                return (Err(TaskFailure::TaskTimeout { limit_ms }), attempt + 1)
            }
        }
    }
    (Err(TaskFailure::Quarantined { attempts: max_attempts }), max_attempts)
}

fn run_attempt<T, F>(task: &Arc<F>, attempt: u32, timeout: Option<Duration>) -> Attempt<T>
where
    T: Send + 'static,
    F: Fn(u32) -> T + Send + Sync + 'static,
{
    match timeout {
        None => {
            // AssertUnwindSafe: tasks are pure functions of their captures
            // (the executor's purity contract), so a failed attempt leaves
            // no state a retry could observe.
            match catch_unwind(AssertUnwindSafe(|| task(attempt))) {
                Ok(v) => Attempt::Done(v),
                Err(_) => Attempt::Panicked,
            }
        }
        Some(limit) => {
            // The watchdog cannot kill a hung thread, only abandon it: the
            // attempt runs detached and reports over a channel; on timeout
            // the receiver walks away and a late result (or panic) is
            // dropped on the floor. The detached thread owns only its Arc
            // clone of the task and the dead sender, so nothing it touches
            // can leak into the merged results.
            let (tx, rx) = mpsc::channel();
            let runner = Arc::clone(task);
            std::thread::spawn(move || {
                let out = catch_unwind(AssertUnwindSafe(|| runner(attempt)));
                let _ = tx.send(out);
            });
            match rx.recv_timeout(limit) {
                Ok(Ok(v)) => Attempt::Done(v),
                Ok(Err(_)) => Attempt::Panicked,
                Err(_) => Attempt::Hung { limit_ms: limit.as_millis() as u64 },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_submission_order() {
        for threads in [1, 2, 3, 4, 8] {
            let pool = Pool::new(threads);
            let tasks: Vec<_> = (0..57u64)
                .map(|i| move || i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .collect();
            let got = pool.run(tasks);
            let want: Vec<u64> =
                (0..57u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).collect();
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn parallel_matches_serial_byte_for_byte() {
        let serial = Pool::serial();
        let make = || (0..24u64).map(|i| move || format!("task-{i}:{}", i * i)).collect::<Vec<_>>();
        let want = serial.run(make());
        for threads in 2..=8 {
            assert_eq!(Pool::new(threads).run(make()), want, "threads={threads}");
        }
    }

    #[test]
    fn zero_and_one_task_batches_work() {
        let pool = Pool::new(4);
        let empty: Vec<fn() -> u32> = Vec::new();
        assert!(pool.run(empty).is_empty());
        assert_eq!(pool.run(vec![|| 41u32 + 1]), vec![42]);
    }

    #[test]
    fn telemetry_counts_batches_and_tasks() {
        let registry = MetricsRegistry::new();
        let pool = Pool::with_counters(3, PoolCounters::register(&registry, "exec.pool"));
        pool.run((0..10).map(|i| move || i).collect::<Vec<_>>());
        pool.run((0..5).map(|i| move || i).collect::<Vec<_>>());
        let snap = registry.snapshot();
        assert_eq!(snap.counter("exec.pool.batches"), 2);
        assert_eq!(snap.counter("exec.pool.tasks"), 15);
    }

    #[test]
    fn borrowed_captures_are_accepted() {
        let data: Vec<u64> = (0..32).collect();
        let pool = Pool::new(4);
        let tasks: Vec<_> = data.chunks(5).map(|c| move || c.iter().sum::<u64>()).collect();
        let sums = pool.run(tasks);
        assert_eq!(sums.iter().sum::<u64>(), data.iter().sum());
    }

    #[test]
    fn clamps_zero_threads_to_serial() {
        assert_eq!(Pool::new(0).threads(), 1);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn task_panic_propagates_to_caller() {
        let pool = Pool::new(4);
        let tasks: Vec<Box<dyn FnOnce() -> u32 + Send>> = (0..8u32)
            .map(|i| {
                Box::new(move || if i == 5 { panic!("boom") } else { i }) as _
            })
            .collect();
        pool.run(tasks);
    }

    /// Regression: a panicking task must not leave PoolCounters
    /// inconsistent. Before the unwind-path fix, run() re-raised on the
    /// first panicked join, skipping both the surviving workers' merges
    /// and the busy_ns flush — a snapshot after catching the panic saw
    /// batches=1, tasks=N, busy_ns=0.
    #[test]
    fn panic_path_finalizes_counters() {
        let registry = MetricsRegistry::new();
        let pool = Pool::with_counters(4, PoolCounters::register(&registry, "exec.pool"));
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let tasks: Vec<Box<dyn FnOnce() -> u64 + Send>> = (0..16u64)
                .map(|i| {
                    Box::new(move || {
                        if i == 3 {
                            panic!("boom");
                        }
                        // Enough work that surviving workers bank
                        // measurable busy time.
                        (0..20_000u64).fold(i, |a, b| a.wrapping_mul(31).wrapping_add(b))
                    }) as _
                })
                .collect();
            pool.run(tasks);
        }));
        assert!(caught.is_err(), "the panic still propagates");
        let snap = registry.snapshot();
        assert_eq!(snap.counter("exec.pool.batches"), 1);
        assert_eq!(snap.counter("exec.pool.tasks"), 16);
        assert!(
            snap.counter("exec.pool.busy_ns") > 0,
            "surviving workers' busy time was flushed before the unwind"
        );
    }

    /// Panic on the first `k` attempts, then produce a value — the
    /// supervisor's deterministic transient-fault shape.
    fn flaky(i: u64, fail_attempts: u32) -> impl Fn(u32) -> u64 + Send + Sync + 'static {
        move |attempt| {
            if attempt < fail_attempts {
                panic!("injected transient abort (task {i}, attempt {attempt})");
            }
            i.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        }
    }

    #[test]
    fn supervised_retry_absorbs_transient_panics() {
        let registry = MetricsRegistry::new();
        let pool = Pool::with_counters(2, PoolCounters::register(&registry, "exec.pool"));
        let tasks: Vec<_> = (0..6u64).map(|i| flaky(i, if i == 2 { 2 } else { 0 })).collect();
        let got = pool.run_supervised(tasks, SupervisePolicy { max_attempts: 3, timeout: None });
        for (i, o) in got.iter().enumerate() {
            assert_eq!(*o, Ok((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        }
        let snap = registry.snapshot();
        assert_eq!(snap.counter("exec.pool.retries"), 2);
        assert_eq!(snap.counter("exec.pool.quarantined"), 0);
    }

    #[test]
    fn supervised_quarantines_persistent_panics() {
        let registry = MetricsRegistry::new();
        let pool = Pool::with_counters(3, PoolCounters::register(&registry, "exec.pool"));
        let tasks: Vec<_> = (0..5u64).map(|i| flaky(i, if i == 1 { u32::MAX } else { 0 })).collect();
        let got = pool.run_supervised(tasks, SupervisePolicy { max_attempts: 3, timeout: None });
        assert_eq!(got[1], Err(TaskFailure::Quarantined { attempts: 3 }));
        for (i, o) in got.iter().enumerate() {
            if i != 1 {
                assert!(o.is_ok(), "task {i} unaffected by its neighbour's quarantine");
            }
        }
        let snap = registry.snapshot();
        assert_eq!(snap.counter("exec.pool.quarantined"), 1);
        assert_eq!(snap.counter("exec.pool.retries"), 2);
    }

    #[test]
    fn supervised_watchdog_turns_a_hang_into_a_typed_timeout() {
        let pool = Pool::new(2);
        let tasks: Vec<Box<dyn Fn(u32) -> u64 + Send + Sync>> = (0..3u64)
            .map(|i| {
                Box::new(move |_attempt: u32| {
                    if i == 1 {
                        // Far past the watchdog; the supervisor abandons us.
                        std::thread::sleep(Duration::from_secs(300));
                    }
                    i
                }) as _
            })
            .collect();
        let got = pool.run_supervised(
            tasks,
            SupervisePolicy { max_attempts: 2, timeout: Some(Duration::from_millis(50)) },
        );
        assert_eq!(got[0], Ok(0));
        assert_eq!(got[1], Err(TaskFailure::TaskTimeout { limit_ms: 50 }));
        assert_eq!(got[2], Ok(2));
    }

    #[test]
    fn supervised_outcomes_are_thread_count_invariant() {
        let make = || {
            (0..12u64)
                .map(|i| flaky(i, (i % 5) as u32)) // some absorbed, some quarantined
                .collect::<Vec<_>>()
        };
        let policy = SupervisePolicy { max_attempts: 3, timeout: None };
        let want = Pool::serial().run_supervised(make(), policy);
        assert!(want.iter().any(|o| o.is_err()), "the mix includes quarantines");
        for threads in [2, 4, 8] {
            assert_eq!(Pool::new(threads).run_supervised(make(), policy), want, "threads={threads}");
        }
    }

    #[test]
    fn supervise_policy_clamps_zero_attempts() {
        let pool = Pool::serial();
        let got = pool.run_supervised(
            vec![flaky(7, 0)],
            SupervisePolicy { max_attempts: 0, timeout: None },
        );
        assert_eq!(got, vec![Ok(7u64.wrapping_mul(0x9E37_79B9_7F4A_7C15))]);
    }
}
