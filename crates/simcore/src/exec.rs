//! Deterministic parallel executor: a scoped-thread work pool for
//! embarrassingly parallel simulation work (per-node kernel runs).
//!
//! # Determinism contract
//!
//! [`Pool::run`] executes a batch of `Send` closures and returns their
//! results **in submission order**, whatever the thread count. Workers
//! claim tasks through one atomic cursor, so *which* worker runs a task
//! (and when, in wall-clock terms) is nondeterministic — but as long as
//! every task is a pure function of its captured inputs, the returned
//! `Vec` is bit-identical to what a serial loop over the same closures
//! would produce. Callers therefore get order-stable reductions for
//! free: fold the result vector left-to-right and the outcome cannot
//! depend on the thread count.
//!
//! With `threads == 1` the pool spawns nothing and runs the closures
//! inline, in order — exactly the pre-pool serial behaviour, with no
//! thread or synchronization overhead.
//!
//! # Telemetry
//!
//! A pool optionally carries [`PoolCounters`] registered on a
//! [`telemetry::MetricsRegistry`]: batches and tasks executed
//! (deterministic) plus total worker busy nanoseconds (host wall-clock,
//! *not* simulated time — never fold it into simulation results or
//! byte-identity checks).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use telemetry::{Counter, MetricsRegistry};

/// Telemetry handles for one executor pool.
#[derive(Clone)]
pub struct PoolCounters {
    /// Batches submitted through [`Pool::run`].
    pub batches: Counter,
    /// Tasks executed (sum of batch sizes) — deterministic.
    pub tasks: Counter,
    /// Total wall-clock nanoseconds workers spent inside task closures.
    /// Host-side measurement; excluded from determinism comparisons.
    pub busy_ns: Counter,
}

impl PoolCounters {
    /// Register the pool counters under `prefix` (e.g. `exec.pool`).
    pub fn register(registry: &MetricsRegistry, prefix: &str) -> PoolCounters {
        PoolCounters {
            batches: registry.counter(&format!("{prefix}.batches")),
            tasks: registry.counter(&format!("{prefix}.tasks")),
            busy_ns: registry.counter(&format!("{prefix}.busy_ns")),
        }
    }
}

/// A fixed-width scoped-thread work pool. Cheap to construct (it holds no
/// threads between batches); every [`Pool::run`] call opens one
/// `std::thread::scope`, so borrowed task captures work naturally.
pub struct Pool {
    threads: usize,
    counters: Option<PoolCounters>,
}

impl Pool {
    /// A pool running `threads` workers per batch; 0 is clamped to 1.
    pub fn new(threads: usize) -> Pool {
        Pool { threads: threads.max(1), counters: None }
    }

    /// The serial pool: tasks run inline, in order.
    pub fn serial() -> Pool {
        Pool::new(1)
    }

    /// [`Pool::new`] with telemetry attached.
    pub fn with_counters(threads: usize, counters: PoolCounters) -> Pool {
        Pool { threads: threads.max(1), counters: Some(counters) }
    }

    /// Worker width of this pool.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run every task and return the results in submission order.
    ///
    /// Results are byte-identical to a serial `tasks.map(|f| f())` as long
    /// as each task is a pure function of its captures. A panicking task
    /// propagates the panic to the caller, as it would serially.
    ///
    /// Purity is enforced statically: task closures must only call
    /// functions rooted at a `PURITY-ROOT` entry point (or a `Balancer`
    /// impl), which puts their whole call tree under the SV006–SV012
    /// reachability rules (`simverify::graph`, DESIGN.md §13). When adding
    /// a new kind of pool workload, annotate its entry function.
    pub fn run<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let n = tasks.len();
        if let Some(c) = &self.counters {
            c.batches.inc();
            c.tasks.add(n as u64);
        }
        if self.threads <= 1 || n <= 1 {
            return self.run_inline(tasks);
        }

        // Self-scheduling: workers claim task indices through one atomic
        // cursor; each slot is taken exactly once, and every worker tags
        // results with the submission index so the merge below restores
        // submission order regardless of which worker ran what.
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<F>>> =
            tasks.into_iter().map(|f| Mutex::new(Some(f))).collect();
        let workers = self.threads.min(n);
        let mut merged: Vec<Option<T>> = (0..n).map(|_| None).collect();
        let mut busy_total: u64 = 0;

        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let cursor = &cursor;
                    let slots = &slots;
                    scope.spawn(move || {
                        let mut produced: Vec<(usize, T)> = Vec::new();
                        let mut busy_ns: u64 = 0;
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            // INVARIANT: index i was claimed exclusively by
                            // this fetch_add, so the slot still holds its
                            // task; a poisoned lock cannot corrupt an
                            // Option, recover its contents.
                            let task = slots[i]
                                .lock()
                                .unwrap_or_else(|p| p.into_inner())
                                .take();
                            let Some(task) = task else { continue };
                            let started = Instant::now();
                            let value = task();
                            busy_ns += started.elapsed().as_nanos() as u64;
                            produced.push((i, value));
                        }
                        (produced, busy_ns)
                    })
                })
                .collect();
            for handle in handles {
                match handle.join() {
                    Ok((produced, busy_ns)) => {
                        busy_total += busy_ns;
                        for (i, value) in produced {
                            merged[i] = Some(value);
                        }
                    }
                    // A worker panicked mid-task: re-raise on the caller's
                    // thread so a panicking task behaves as it would have
                    // serially.
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });

        if let Some(c) = &self.counters {
            c.busy_ns.add(busy_total);
        }
        merged
            .into_iter()
            .map(|slot| {
                // INVARIANT: every index below the cursor was claimed and
                // produced exactly once; a hole would mean a worker died,
                // which resume_unwind above already surfaced.
                slot.expect("every submitted task produced a result")
            })
            .collect()
    }

    fn run_inline<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        F: FnOnce() -> T,
    {
        let started = Instant::now();
        let out: Vec<T> = tasks.into_iter().map(|f| f()).collect();
        if let Some(c) = &self.counters {
            c.busy_ns.add(started.elapsed().as_nanos() as u64);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_submission_order() {
        for threads in [1, 2, 3, 4, 8] {
            let pool = Pool::new(threads);
            let tasks: Vec<_> = (0..57u64)
                .map(|i| move || i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .collect();
            let got = pool.run(tasks);
            let want: Vec<u64> =
                (0..57u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).collect();
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn parallel_matches_serial_byte_for_byte() {
        let serial = Pool::serial();
        let make = || (0..24u64).map(|i| move || format!("task-{i}:{}", i * i)).collect::<Vec<_>>();
        let want = serial.run(make());
        for threads in 2..=8 {
            assert_eq!(Pool::new(threads).run(make()), want, "threads={threads}");
        }
    }

    #[test]
    fn zero_and_one_task_batches_work() {
        let pool = Pool::new(4);
        let empty: Vec<fn() -> u32> = Vec::new();
        assert!(pool.run(empty).is_empty());
        assert_eq!(pool.run(vec![|| 41u32 + 1]), vec![42]);
    }

    #[test]
    fn telemetry_counts_batches_and_tasks() {
        let registry = MetricsRegistry::new();
        let pool = Pool::with_counters(3, PoolCounters::register(&registry, "exec.pool"));
        pool.run((0..10).map(|i| move || i).collect::<Vec<_>>());
        pool.run((0..5).map(|i| move || i).collect::<Vec<_>>());
        let snap = registry.snapshot();
        assert_eq!(snap.counter("exec.pool.batches"), 2);
        assert_eq!(snap.counter("exec.pool.tasks"), 15);
    }

    #[test]
    fn borrowed_captures_are_accepted() {
        let data: Vec<u64> = (0..32).collect();
        let pool = Pool::new(4);
        let tasks: Vec<_> = data.chunks(5).map(|c| move || c.iter().sum::<u64>()).collect();
        let sums = pool.run(tasks);
        assert_eq!(sums.iter().sum::<u64>(), data.iter().sum());
    }

    #[test]
    fn clamps_zero_threads_to_serial() {
        assert_eq!(Pool::new(0).threads(), 1);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn task_panic_propagates_to_caller() {
        let pool = Pool::new(4);
        let tasks: Vec<Box<dyn FnOnce() -> u32 + Send>> = (0..8u32)
            .map(|i| {
                Box::new(move || if i == 5 { panic!("boom") } else { i }) as _
            })
            .collect();
        pool.run(tasks);
    }
}
