//! Property tests for the discrete-event core.

use proptest::prelude::*;
use simcore::{EventQueue, OnlineStats, SimDuration, SimTime};

proptest! {
    /// Events pop in (time, insertion-order) order regardless of insertion
    /// pattern.
    #[test]
    fn queue_pops_in_time_then_fifo_order(times in proptest::collection::vec(0u64..10_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime(t), i);
        }
        let mut popped = Vec::new();
        while let Some(ev) = q.pop() {
            popped.push((ev.time.as_nanos(), ev.payload));
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO within a timestamp");
            }
        }
    }

    /// Cancelling an arbitrary subset suppresses exactly those events.
    #[test]
    fn cancellation_is_exact(
        times in proptest::collection::vec(0u64..1_000, 1..100),
        cancel_mask in proptest::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = times.iter().enumerate().map(|(i, &t)| q.schedule(SimTime(t), i)).collect();
        let mut expected: Vec<usize> = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            let cancel = *cancel_mask.get(i).unwrap_or(&false);
            if cancel {
                prop_assert!(q.cancel(*id));
            } else {
                expected.push(i);
            }
        }
        let mut popped: Vec<usize> = Vec::new();
        while let Some(ev) = q.pop() {
            popped.push(ev.payload);
        }
        popped.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(popped, expected);
    }

    /// Welford statistics agree with the naive two-pass computation.
    #[test]
    fn online_stats_match_naive(xs in proptest::collection::vec(-1e6f64..1e6, 1..400)) {
        let mut s = OnlineStats::new();
        xs.iter().for_each(|&x| s.push(x));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        prop_assert!((s.mean() - mean).abs() <= 1e-6 * mean.abs().max(1.0));
        prop_assert!((s.variance() - var).abs() <= 1e-5 * var.abs().max(1.0));
    }

    /// Merging split accumulators equals accumulating the whole sequence.
    #[test]
    fn stats_merge_associative(
        xs in proptest::collection::vec(-1e3f64..1e3, 2..200),
        split in 1usize..100,
    ) {
        let split = split.min(xs.len() - 1);
        let mut whole = OnlineStats::new();
        xs.iter().for_each(|&x| whole.push(x));
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        xs[..split].iter().for_each(|&x| a.push(x));
        xs[split..].iter().for_each(|&x| b.push(x));
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-9 * whole.mean().abs().max(1.0));
    }

    /// Duration arithmetic: mul/div round-trips within rounding error.
    #[test]
    fn duration_scale_roundtrip(ns in 1u64..1_000_000_000_000, factor in 0.001f64..1000.0) {
        let d = SimDuration::from_nanos(ns);
        let scaled = d.mul_f64(factor).div_f64(factor);
        let err = scaled.as_nanos().abs_diff(ns);
        // One ns of rounding per operation, amplified by 1/factor.
        let tolerance = (2.0 / factor).ceil() as u64 + 2;
        prop_assert!(err <= tolerance, "err {err} tolerance {tolerance}");
    }
}
