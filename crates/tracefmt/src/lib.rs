//! Trace collection and rendering — the reproduction's PARAVER (paper §V
//! uses PARAVER "to collect data and statistics and to show the trace of
//! each process").
//!
//! * [`timeline`] — turns raw kernel [`schedsim::TraceRecord`]s into
//!   per-task state intervals (Compute / Ready / Wait);
//! * [`ascii`] — renders the timelines the paper's figures show: one row
//!   per process, dark (`#`) compute against light (`.`) wait, with
//!   hardware-priority change markers;
//! * [`stats`] — the paper's table metrics: per-process `%Comp`, final
//!   hardware priority, application execution time;
//! * [`export`] — CSV/JSON serialization of intervals and statistics;
//! * [`prv`] — export in the actual Paraver trace format (`.prv`/`.pcf`),
//!   so runs can be inspected in the paper's own visualization tool.

pub mod ascii;
pub mod export;
pub mod prv;
pub mod stats;
pub mod timeline;

pub use ascii::{render_timeline, AsciiOptions};
pub use stats::{task_stats, AppStats, TaskStats};
pub use timeline::{Interval, TaskTimeline, Timeline, TraceState};
