//! Paraver trace export (`.prv` + `.pcf`).
//!
//! The paper's figures come from PARAVER; this module writes the trace in
//! the (textual) Paraver format so the reproduction's runs can be opened
//! in the real tool. Format reference: the Paraver "trace generation"
//! manual — a header line followed by state records:
//!
//! ```text
//! #Paraver (dd/mm/yy at hh:mm):totaltime_ns:nNodes(cpus):nAppl:appl_list
//! 1:cpu:appl:task:thread:begin:end:state
//! ```
//!
//! States are mapped like Paraver's default semantics: 1 = Running,
//! 2 = Not created/Ready, 3 = Waiting (blocked). The companion `.pcf`
//! names the states so the GUI colours them like the paper's figures.

use crate::timeline::{Timeline, TraceState};
use std::fmt::Write;

/// Map our display state to the Paraver state id.
fn prv_state(s: TraceState) -> u32 {
    match s {
        TraceState::Compute => 1,
        TraceState::Ready => 2,
        TraceState::Wait => 3,
    }
}

/// Render the `.prv` body for a timeline. One Paraver "application" with
/// one task per simulated process, one thread each; CPU ids are synthetic
/// (task index + 1) since Paraver requires one.
pub fn to_prv(tl: &Timeline) -> String {
    let total_ns = tl.end.as_nanos();
    let ntasks = tl.tasks.len().max(1);
    let mut out = String::new();
    // Header. Date is fixed — traces are deterministic artifacts, and a
    // wall-clock stamp would break reproducibility diffs.
    let _ = write!(out, "#Paraver (01/01/08 at 00:00):{total_ns}:1({ntasks}):1:{ntasks}(");
    for i in 0..ntasks {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "1:{}", i + 1);
    }
    out.push_str(")\n");

    for (idx, task) in tl.tasks.iter().enumerate() {
        let cpu = idx + 1;
        let tid = idx + 1;
        for iv in &task.intervals {
            let _ = writeln!(
                out,
                "1:{cpu}:1:{tid}:1:{}:{}:{}",
                iv.start.as_nanos(),
                iv.end.as_nanos(),
                prv_state(iv.state)
            );
        }
    }
    out
}

/// The `.pcf` (config) naming the states, so Paraver renders compute dark
/// and waits light, as in the paper's figures.
pub fn to_pcf() -> String {
    "DEFAULT_OPTIONS\n\
     LEVEL               THREAD\n\
     UNITS               NANOSEC\n\
     \n\
     STATES\n\
     0    Idle\n\
     1    Running\n\
     2    Ready\n\
     3    Waiting\n\
     \n\
     STATES_COLOR\n\
     0    {117,195,255}\n\
     1    {0,0,255}\n\
     2    {255,255,170}\n\
     3    {230,230,230}\n"
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::{Interval, TaskTimeline};
    use schedsim::TaskId;
    use simcore::{SimDuration, SimTime};

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn sample() -> Timeline {
        Timeline {
            tasks: vec![
                TaskTimeline {
                    task: TaskId(0),
                    name: "P1".into(),
                    spawned: t(0),
                    exited: Some(t(10)),
                    intervals: vec![
                        Interval { start: t(0), end: t(6), state: TraceState::Compute },
                        Interval { start: t(6), end: t(10), state: TraceState::Wait },
                    ],
                    prio_changes: vec![],
                    iterations: vec![],
                },
                TaskTimeline {
                    task: TaskId(1),
                    name: "P2".into(),
                    spawned: t(0),
                    exited: Some(t(10)),
                    intervals: vec![Interval { start: t(0), end: t(10), state: TraceState::Compute }],
                    prio_changes: vec![],
                    iterations: vec![],
                },
            ],
            end: t(10),
        }
    }

    #[test]
    fn header_declares_tasks_and_duration() {
        let prv = to_prv(&sample());
        let header = prv.lines().next().unwrap();
        assert!(header.starts_with("#Paraver "));
        assert!(header.contains(":10000000:"), "duration ns: {header}");
        assert!(header.contains("1(2)"), "one node, two cpus: {header}");
    }

    #[test]
    fn state_records_cover_intervals() {
        let prv = to_prv(&sample());
        let records: Vec<&str> = prv.lines().skip(1).collect();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0], "1:1:1:1:1:0:6000000:1");
        assert_eq!(records[1], "1:1:1:1:1:6000000:10000000:3");
        assert_eq!(records[2], "1:2:1:2:1:0:10000000:1");
    }

    #[test]
    fn pcf_names_the_states() {
        let pcf = to_pcf();
        assert!(pcf.contains("STATES"));
        assert!(pcf.contains("1    Running"));
        assert!(pcf.contains("3    Waiting"));
    }

    #[test]
    fn deterministic_output() {
        assert_eq!(to_prv(&sample()), to_prv(&sample()));
    }
}
