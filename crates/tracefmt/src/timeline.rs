//! From raw trace records to per-task state intervals.

use power5::HwPriority;
use schedsim::{TaskId, TaskState, TraceEvent, TraceRecord};
use serde::{Deserialize, Serialize};
use simcore::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// The display states of the paper's figures.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum TraceState {
    /// Executing on a CPU (the figures' dark gray).
    Compute,
    /// Runnable, waiting for a CPU (scheduler latency).
    Ready,
    /// Blocked on communication/synchronization (light gray).
    Wait,
}

/// A maximal span of one state.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Interval {
    pub start: SimTime,
    pub end: SimTime,
    pub state: TraceState,
}

impl Interval {
    pub fn duration(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }
}

/// One task's rendered history.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TaskTimeline {
    pub task: TaskId,
    pub name: String,
    pub spawned: SimTime,
    pub exited: Option<SimTime>,
    pub intervals: Vec<Interval>,
    /// Hardware-priority changes, as `(time, new priority)`.
    pub prio_changes: Vec<(SimTime, HwPriority)>,
    /// Iteration-end markers, as `(time, utilization in [0,1])`.
    pub iterations: Vec<(SimTime, f64)>,
}

impl TaskTimeline {
    /// Total time in a given state.
    pub fn time_in(&self, state: TraceState) -> SimDuration {
        self.intervals.iter().filter(|i| i.state == state).map(|i| i.duration()).sum()
    }

    /// The state at time `t`, if the task was alive.
    pub fn state_at(&self, t: SimTime) -> Option<TraceState> {
        self.intervals.iter().find(|i| i.start <= t && t < i.end).map(|i| i.state)
    }
}

/// All tasks' timelines.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Timeline {
    pub tasks: Vec<TaskTimeline>,
    pub end: SimTime,
}

impl Timeline {
    /// Build timelines from kernel trace records (which must be in
    /// chronological order, as the kernel emits them).
    pub fn from_records(records: &[TraceRecord]) -> Timeline {
        struct Builder {
            name: String,
            spawned: SimTime,
            exited: Option<SimTime>,
            current: Option<(SimTime, TraceState)>,
            intervals: Vec<Interval>,
            prio_changes: Vec<(SimTime, HwPriority)>,
            iterations: Vec<(SimTime, f64)>,
        }
        impl Builder {
            fn switch(&mut self, now: SimTime, next: Option<TraceState>) {
                if let Some((start, state)) = self.current.take() {
                    if now > start {
                        self.intervals.push(Interval { start, end: now, state });
                    }
                }
                self.current = next.map(|s| (now, s));
            }
        }

        let mut builders: BTreeMap<TaskId, Builder> = BTreeMap::new();
        let mut end = SimTime::ZERO;
        for rec in records {
            end = end.max(rec.time);
            match &rec.event {
                TraceEvent::Spawn { name } => {
                    builders.insert(
                        rec.task,
                        Builder {
                            name: name.clone(),
                            spawned: rec.time,
                            exited: None,
                            current: Some((rec.time, TraceState::Ready)),
                            intervals: Vec::new(),
                            prio_changes: Vec::new(),
                            iterations: Vec::new(),
                        },
                    );
                }
                TraceEvent::State { state, .. } => {
                    if let Some(b) = builders.get_mut(&rec.task) {
                        let next = match state {
                            TaskState::Running => Some(TraceState::Compute),
                            TaskState::Runnable => Some(TraceState::Ready),
                            TaskState::Sleeping => Some(TraceState::Wait),
                            TaskState::Exited => None,
                        };
                        b.switch(rec.time, next);
                    }
                }
                TraceEvent::HwPrio { prio } => {
                    if let Some(b) = builders.get_mut(&rec.task) {
                        b.prio_changes.push((rec.time, *prio));
                    }
                }
                TraceEvent::IterationEnd { utilization, .. } => {
                    if let Some(b) = builders.get_mut(&rec.task) {
                        b.iterations.push((rec.time, *utilization));
                    }
                }
                TraceEvent::Exit => {
                    if let Some(b) = builders.get_mut(&rec.task) {
                        b.switch(rec.time, None);
                        b.exited = Some(rec.time);
                    }
                }
            }
        }
        let final_time = end;
        let tasks = builders
            .into_iter()
            .map(|(task, mut b)| {
                // Close any interval still open at the end of the trace.
                b.switch(final_time, None);
                TaskTimeline {
                    task,
                    name: b.name,
                    spawned: b.spawned,
                    exited: b.exited,
                    intervals: b.intervals,
                    prio_changes: b.prio_changes,
                    iterations: b.iterations,
                }
            })
            .collect();
        Timeline { tasks, end }
    }

    /// Find a task's timeline by id.
    pub fn task(&self, id: TaskId) -> Option<&TaskTimeline> {
        self.tasks.iter().find(|t| t.task == id)
    }

    /// Keep only the given tasks (e.g. drop noise daemons before
    /// rendering).
    pub fn filter_tasks(&self, keep: &[TaskId]) -> Timeline {
        Timeline {
            tasks: self.tasks.iter().filter(|t| keep.contains(&t.task)).cloned().collect(),
            end: self.end,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn rec(ms: u64, task: usize, event: TraceEvent) -> TraceRecord {
        TraceRecord { time: t(ms), task: TaskId(task), event }
    }

    fn sample_records() -> Vec<TraceRecord> {
        vec![
            rec(0, 0, TraceEvent::Spawn { name: "P1".into() }),
            rec(0, 0, TraceEvent::State { state: TaskState::Runnable, cpu: None }),
            rec(1, 0, TraceEvent::State { state: TaskState::Running, cpu: None }),
            rec(5, 0, TraceEvent::State { state: TaskState::Sleeping, cpu: None }),
            rec(8, 0, TraceEvent::IterationEnd { index: 1, utilization: 0.5 }),
            rec(8, 0, TraceEvent::HwPrio { prio: HwPriority::HIGH }),
            rec(8, 0, TraceEvent::State { state: TaskState::Runnable, cpu: None }),
            rec(9, 0, TraceEvent::State { state: TaskState::Running, cpu: None }),
            rec(12, 0, TraceEvent::Exit),
        ]
    }

    #[test]
    fn builds_intervals_in_order() {
        let tl = Timeline::from_records(&sample_records());
        assert_eq!(tl.tasks.len(), 1);
        let task = &tl.tasks[0];
        assert_eq!(task.name, "P1");
        let states: Vec<TraceState> = task.intervals.iter().map(|i| i.state).collect();
        assert_eq!(
            states,
            vec![
                TraceState::Ready,
                TraceState::Compute,
                TraceState::Wait,
                TraceState::Ready,
                TraceState::Compute
            ]
        );
        assert_eq!(task.exited, Some(t(12)));
    }

    #[test]
    fn time_accounting_sums() {
        let tl = Timeline::from_records(&sample_records());
        let task = &tl.tasks[0];
        assert_eq!(task.time_in(TraceState::Compute), SimDuration::from_millis(7));
        assert_eq!(task.time_in(TraceState::Wait), SimDuration::from_millis(3));
        assert_eq!(task.time_in(TraceState::Ready), SimDuration::from_millis(2));
    }

    #[test]
    fn captures_prio_and_iterations() {
        let tl = Timeline::from_records(&sample_records());
        let task = &tl.tasks[0];
        assert_eq!(task.prio_changes, vec![(t(8), HwPriority::HIGH)]);
        assert_eq!(task.iterations.len(), 1);
        assert!((task.iterations[0].1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn state_at_queries() {
        let tl = Timeline::from_records(&sample_records());
        let task = &tl.tasks[0];
        assert_eq!(task.state_at(t(3)), Some(TraceState::Compute));
        assert_eq!(task.state_at(t(6)), Some(TraceState::Wait));
        assert_eq!(task.state_at(t(20)), None);
    }

    #[test]
    fn open_interval_closed_at_trace_end() {
        let records = vec![
            rec(0, 0, TraceEvent::Spawn { name: "live".into() }),
            rec(1, 0, TraceEvent::State { state: TaskState::Running, cpu: None }),
            rec(10, 1, TraceEvent::Spawn { name: "other".into() }),
        ];
        let tl = Timeline::from_records(&records);
        let task = tl.task(TaskId(0)).unwrap();
        assert_eq!(task.intervals.last().unwrap().end, t(10));
    }

    #[test]
    fn filter_tasks_drops_others() {
        let mut records = sample_records();
        records.push(rec(2, 7, TraceEvent::Spawn { name: "noise".into() }));
        let tl = Timeline::from_records(&records);
        assert_eq!(tl.tasks.len(), 2);
        let filtered = tl.filter_tasks(&[TaskId(0)]);
        assert_eq!(filtered.tasks.len(), 1);
        assert_eq!(filtered.tasks[0].task, TaskId(0));
    }
}
