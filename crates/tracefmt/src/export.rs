//! Serialization of timelines and statistics (CSV and JSON) so experiment
//! output can be post-processed outside the simulator.

use crate::stats::AppStats;
use crate::timeline::Timeline;
use std::fmt::Write;

/// Timeline intervals as CSV: `task,name,start_s,end_s,state`.
pub fn timeline_to_csv(tl: &Timeline) -> String {
    let mut out = String::from("task,name,start_s,end_s,state\n");
    for t in &tl.tasks {
        for iv in &t.intervals {
            let _ = writeln!(
                out,
                "{},{},{:.9},{:.9},{:?}",
                t.task.0,
                t.name,
                iv.start.as_secs_f64(),
                iv.end.as_secs_f64(),
                iv.state
            );
        }
    }
    out
}

/// Statistics as CSV: `task,name,comp_percent,ready_percent,prio,exec_s`.
pub fn stats_to_csv(stats: &AppStats) -> String {
    let mut out = String::from("task,name,comp_percent,ready_percent,prio,exec_s\n");
    for row in &stats.tasks {
        let _ = writeln!(
            out,
            "{},{},{:.4},{:.4},{},{:.6}",
            row.task.0,
            row.name,
            row.comp_percent,
            row.ready_percent,
            row.final_prio.map(|p| p.value()).unwrap_or(4),
            stats.exec_time.as_secs_f64()
        );
    }
    out
}

/// JSON export of a whole timeline.
pub fn timeline_to_json(tl: &Timeline) -> serde_json::Result<String> {
    serde_json::to_string_pretty(tl)
}

/// JSON export of statistics.
pub fn stats_to_json(stats: &AppStats) -> serde_json::Result<String> {
    serde_json::to_string_pretty(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::{Interval, TaskTimeline, TraceState};
    use schedsim::TaskId;
    use simcore::{SimDuration, SimTime};

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn tl() -> Timeline {
        Timeline {
            tasks: vec![TaskTimeline {
                task: TaskId(0),
                name: "P1".into(),
                spawned: t(0),
                exited: Some(t(10)),
                intervals: vec![Interval { start: t(0), end: t(10), state: TraceState::Compute }],
                prio_changes: vec![],
                iterations: vec![],
            }],
            end: t(10),
        }
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = timeline_to_csv(&tl());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "task,name,start_s,end_s,state");
        assert!(lines[1].starts_with("0,P1,0.000000000,0.010000000,Compute"));
    }

    #[test]
    fn stats_csv_roundtrip_fields() {
        let stats = AppStats::for_tasks(&tl(), &[TaskId(0)]);
        let csv = stats_to_csv(&stats);
        assert!(csv.contains("comp_percent"));
        assert!(csv.contains("100.0000"), "fully computing: {csv}");
    }

    #[test]
    fn json_exports_parse_back() {
        let json = timeline_to_json(&tl()).unwrap();
        let back: Timeline = serde_json::from_str(&json).unwrap();
        assert_eq!(back.tasks.len(), 1);
        let stats = AppStats::for_tasks(&tl(), &[TaskId(0)]);
        let json = stats_to_json(&stats).unwrap();
        assert!(json.contains("comp_percent"));
    }
}
