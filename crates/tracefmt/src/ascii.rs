//! ASCII rendering of timelines — the reproduction of the paper's
//! PARAVER figures (Figures 2–6).
//!
//! One row per process; simulated time maps onto a fixed-width column grid.
//! `#` is computing (the figures' dark gray), `.` is waiting (light gray),
//! `:` is runnable-but-not-running, and a digit marks a hardware-priority
//! change to that level within the column.

use crate::timeline::{Timeline, TraceState};
use simcore::SimTime;
use std::fmt::Write;

/// Rendering options.
#[derive(Clone, Copy, Debug)]
pub struct AsciiOptions {
    /// Character columns of the time axis.
    pub width: usize,
    /// Mark hardware-priority changes with the new priority digit.
    pub mark_prio_changes: bool,
    /// Render only up to this time (default: whole trace).
    pub until: Option<SimTime>,
}

impl Default for AsciiOptions {
    fn default() -> Self {
        AsciiOptions { width: 100, mark_prio_changes: true, until: None }
    }
}

/// Render the timeline as a multi-line string.
pub fn render_timeline(tl: &Timeline, opts: &AsciiOptions) -> String {
    let end = opts.until.unwrap_or(tl.end).max(SimTime(1));
    let width = opts.width.max(10);
    let col_of = |t: SimTime| -> usize {
        ((t.as_nanos() as u128 * width as u128) / end.as_nanos().max(1) as u128) as usize
    };

    let name_w = tl.tasks.iter().map(|t| t.name.len()).max().unwrap_or(4).max(4);
    let mut out = String::new();
    // Header: time axis.
    let _ = writeln!(
        out,
        "{:name_w$} 0{}{:.2}s",
        "",
        "-".repeat(width.saturating_sub(2)),
        end.as_secs_f64(),
        name_w = name_w
    );
    for task in &tl.tasks {
        // Accumulate the time each state occupies within each cell, then
        // colour the cell by its majority state — a coarse view of a
        // fine-grained trace stays faithful (a 50%-waiting process renders
        // half-dark, like the PARAVER figures).
        let mut weights = vec![[0u64; 3]; width]; // [Compute, Wait, Ready]
        for iv in &task.intervals {
            if iv.start >= end {
                break;
            }
            let s = iv.start;
            let e = iv.end.min(end);
            let idx = match iv.state {
                TraceState::Compute => 0,
                TraceState::Wait => 1,
                TraceState::Ready => 2,
            };
            let a = col_of(s).min(width - 1);
            let b = col_of(e).min(width - 1).max(a);
            let col_span_ns = (end.as_nanos() / width as u64).max(1);
            for (c, w) in weights.iter_mut().enumerate().take(b + 1).skip(a) {
                let cell_start = c as u64 * col_span_ns;
                let cell_end = cell_start + col_span_ns;
                let overlap = e.as_nanos().min(cell_end).saturating_sub(s.as_nanos().max(cell_start));
                w[idx] += overlap;
            }
        }
        let mut row: Vec<char> = weights
            .iter()
            .map(|w| {
                if w[0] == 0 && w[1] == 0 && w[2] == 0 {
                    ' '
                } else if w[0] >= w[1] && w[0] >= w[2] {
                    '#'
                } else if w[1] >= w[2] {
                    '.'
                } else {
                    ':'
                }
            })
            .collect();
        if opts.mark_prio_changes {
            for (t, prio) in &task.prio_changes {
                if *t < end {
                    let c = col_of(*t).min(width - 1);
                    row[c] = char::from_digit(prio.value() as u32, 10).unwrap_or('?');
                }
            }
        }
        let line: String = row.into_iter().collect();
        let _ = writeln!(out, "{:name_w$} {}", task.name, line, name_w = name_w);
    }
    let _ = writeln!(
        out,
        "{:name_w$} [#]=compute  [.]=wait  [:]=ready  [digit]=hw prio change",
        "",
        name_w = name_w
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::{Interval, TaskTimeline};
    use power5::HwPriority;
    use schedsim::TaskId;
    use simcore::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn sample() -> Timeline {
        Timeline {
            tasks: vec![TaskTimeline {
                task: TaskId(0),
                name: "P1".into(),
                spawned: t(0),
                exited: Some(t(100)),
                intervals: vec![
                    Interval { start: t(0), end: t(50), state: TraceState::Compute },
                    Interval { start: t(50), end: t(100), state: TraceState::Wait },
                ],
                prio_changes: vec![(t(50), HwPriority::HIGH)],
                iterations: vec![],
            }],
            end: t(100),
        }
    }

    #[test]
    fn renders_compute_and_wait_halves() {
        let s = render_timeline(&sample(), &AsciiOptions { width: 40, ..Default::default() });
        let row = s.lines().nth(1).unwrap();
        let body: String = row.chars().skip(3).collect();
        let hashes = body.chars().filter(|&c| c == '#').count();
        let dots = body.chars().filter(|&c| c == '.').count();
        assert!((15..=25).contains(&hashes), "hashes {hashes} in {body:?}");
        assert!((15..=25).contains(&dots), "dots {dots} in {body:?}");
    }

    #[test]
    fn prio_change_marker_appears() {
        let s = render_timeline(&sample(), &AsciiOptions { width: 40, ..Default::default() });
        assert!(s.contains('6'), "priority digit rendered: {s}");
        let off = render_timeline(
            &sample(),
            &AsciiOptions { width: 40, mark_prio_changes: false, ..Default::default() },
        );
        assert!(!off.lines().nth(1).unwrap().contains('6'));
    }

    #[test]
    fn until_truncates() {
        let s = render_timeline(
            &sample(),
            &AsciiOptions { width: 40, until: Some(t(50)), ..Default::default() },
        );
        let row = s.lines().nth(1).unwrap();
        assert!(!row.contains('.'), "wait phase excluded: {row}");
    }

    #[test]
    fn header_and_legend_present() {
        let s = render_timeline(&sample(), &AsciiOptions::default());
        assert!(s.contains("0.10s"), "end time in header: {s}");
        assert!(s.contains("compute"));
    }

    #[test]
    fn empty_timeline_renders() {
        let tl = Timeline::default();
        let s = render_timeline(&tl, &AsciiOptions::default());
        assert!(s.contains("compute"), "legend still there");
    }
}
