//! Per-process statistics — the columns of the paper's Tables III–VI.

use crate::timeline::{TaskTimeline, Timeline, TraceState};
use power5::HwPriority;
use schedsim::TaskId;
use serde::{Deserialize, Serialize};
use simcore::{SimDuration, SimTime};

/// One row of a paper-style table.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TaskStats {
    pub task: TaskId,
    pub name: String,
    /// `%Comp`: computing time over lifetime, in percent.
    pub comp_percent: f64,
    /// Time runnable but not running, in percent of lifetime.
    pub ready_percent: f64,
    /// Final hardware priority observed (None = never changed from default).
    pub final_prio: Option<HwPriority>,
    pub compute: SimDuration,
    pub wait: SimDuration,
    pub ready: SimDuration,
    pub lifetime: SimDuration,
    pub iterations: usize,
}

/// Application-level summary.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AppStats {
    pub tasks: Vec<TaskStats>,
    /// Total execution time: last exit (or trace end).
    pub exec_time: SimDuration,
}

/// Compute a row for one task.
pub fn task_stats(t: &TaskTimeline) -> TaskStats {
    let end = t.exited.unwrap_or_else(|| {
        t.intervals.last().map(|i| i.end).unwrap_or(t.spawned)
    });
    let lifetime = end.saturating_since(t.spawned);
    let compute = t.time_in(TraceState::Compute);
    let wait = t.time_in(TraceState::Wait);
    let ready = t.time_in(TraceState::Ready);
    let pct = |d: SimDuration| {
        if lifetime.is_zero() {
            0.0
        } else {
            100.0 * d.as_nanos() as f64 / lifetime.as_nanos() as f64
        }
    };
    TaskStats {
        task: t.task,
        name: t.name.clone(),
        comp_percent: pct(compute),
        ready_percent: pct(ready),
        final_prio: t.prio_changes.last().map(|(_, p)| *p),
        compute,
        wait,
        ready,
        lifetime,
        iterations: t.iterations.len(),
    }
}

impl AppStats {
    /// Stats for the given tasks of a timeline (order preserved).
    pub fn for_tasks(tl: &Timeline, tasks: &[TaskId]) -> AppStats {
        let rows: Vec<TaskStats> = tasks
            .iter()
            .filter_map(|id| tl.task(*id))
            .map(task_stats)
            .collect();
        let start = rows.iter().map(|_| SimTime::ZERO).next().unwrap_or(SimTime::ZERO);
        let end = tasks
            .iter()
            .filter_map(|id| tl.task(*id))
            .filter_map(|t| t.exited)
            .max()
            .unwrap_or(tl.end);
        AppStats { tasks: rows, exec_time: end.saturating_since(start) }
    }

    /// Render as a paper-style text table.
    pub fn to_table(&self, label: &str) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "{label:<12} {:<14} {:>8} {:>8} {:>6}", "Proc", "%Comp", "%Ready", "Prio");
        for (i, row) in self.tasks.iter().enumerate() {
            let prio = row
                .final_prio
                .map(|p| p.to_string())
                .unwrap_or_else(|| "4".to_string());
            let _ = writeln!(
                out,
                "{:<12} {:<14} {:>8.2} {:>8.2} {:>6}",
                if i == 0 { label } else { "" },
                row.name,
                row.comp_percent,
                row.ready_percent,
                prio
            );
        }
        let _ = writeln!(out, "{:<12} Exec. Time: {:.2}s", "", self.exec_time.as_secs_f64());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::Interval;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn tl() -> Timeline {
        Timeline {
            tasks: vec![TaskTimeline {
                task: TaskId(0),
                name: "P1".into(),
                spawned: t(0),
                exited: Some(t(100)),
                intervals: vec![
                    Interval { start: t(0), end: t(25), state: TraceState::Compute },
                    Interval { start: t(25), end: t(95), state: TraceState::Wait },
                    Interval { start: t(95), end: t(100), state: TraceState::Ready },
                ],
                prio_changes: vec![(t(25), HwPriority::MEDIUM_HIGH)],
                iterations: vec![(t(95), 0.25)],
            }],
            end: t(100),
        }
    }

    #[test]
    fn percentages_follow_time_split() {
        let s = task_stats(&tl().tasks[0]);
        assert!((s.comp_percent - 25.0).abs() < 1e-9);
        assert!((s.ready_percent - 5.0).abs() < 1e-9);
        assert_eq!(s.final_prio, Some(HwPriority::MEDIUM_HIGH));
        assert_eq!(s.iterations, 1);
        assert_eq!(s.lifetime, SimDuration::from_millis(100));
    }

    #[test]
    fn app_stats_exec_time_is_last_exit() {
        let stats = AppStats::for_tasks(&tl(), &[TaskId(0)]);
        assert_eq!(stats.exec_time, SimDuration::from_millis(100));
        assert_eq!(stats.tasks.len(), 1);
    }

    #[test]
    fn table_renders_rows() {
        let stats = AppStats::for_tasks(&tl(), &[TaskId(0)]);
        let table = stats.to_table("Baseline");
        assert!(table.contains("Baseline"));
        assert!(table.contains("P1"));
        assert!(table.contains("25.00"));
        assert!(table.contains("Exec. Time: 0.10s"));
    }

    #[test]
    fn missing_tasks_are_skipped() {
        let stats = AppStats::for_tasks(&tl(), &[TaskId(0), TaskId(42)]);
        assert_eq!(stats.tasks.len(), 1);
    }
}
