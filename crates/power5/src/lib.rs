//! Simulated IBM POWER5 processor.
//!
//! The POWER5 is a dual-core chip whose cores are 2-way SMT. Each hardware
//! context has a *hardware thread priority* in `0..=7`; the core arbitrates
//! decode cycles between its two contexts according to the priority
//! difference (paper Table I): with difference `d`, every
//! `R = 2^(|d|+1)` cycles the lower-priority thread decodes once and the
//! higher-priority thread `R - 1` times. Priorities 0 (context off),
//! 1 (background) and 7 (single-thread mode) are special.
//!
//! This crate models everything the paper's scheduler can observe or control:
//!
//! * [`topology`] — chips, cores, hardware contexts (what Linux sees as CPUs)
//!   and the domain hierarchy used by load balancing;
//! * [`priority`] — the 8 priority levels, the privilege rules and the
//!   `or X,X,X` nop encodings of paper Table II;
//! * [`decode`] — the decode-slot arbiter of paper Table I, both as a
//!   closed-form share calculation and as a slot-accurate reference
//!   implementation used to cross-check it;
//! * [`perf`] — the SMT performance model translating (my priority, sibling
//!   priority) into task speed factors, calibrated against the speedups and
//!   slowdowns the paper reports;
//! * [`chip`] — the stateful chip: per-context priority registers mutated via
//!   simulated `or`-nops with privilege checking.

pub mod chip;
pub mod decode;
pub mod perf;
pub mod priority;
pub mod topology;

pub use chip::{Chip, ContextState, IdleMode};
pub use decode::{decode_interval, decode_share, DecodeSplit};
pub use perf::{AnalyticModel, CtxLoad, PerfModel, SmtPerfModel, SpeedFactors, TableModel, TaskPerfTraits};
pub use priority::{HwPriority, PriorityError, PrivilegeLevel};
pub use topology::{
    ChipId, ContextId, CoreId, CpuId, DomainLevel, Level, LevelKind, Topology, TopologyError,
};
