//! SMT performance model: from context priorities to task speeds.
//!
//! The scheduler does not care about decode slots per se — it cares about
//! how fast each task *runs*. Mapping decode share to instruction throughput
//! is strongly non-linear on the real POWER5: the paper's §I observes that
//! buying an X% speedup for the favoured thread can cost the sibling more
//! than 10·X%, and the companion characterization study (Boneti et al.,
//! ISCA 2008, reference \[4\] of the paper) measures the curve. We therefore
//! expose a [`PerfModel`] trait with two implementations:
//!
//! * [`TableModel`] — the default: a per-priority-difference table of
//!   (high-priority, low-priority) speed factors calibrated so that at the
//!   paper's working point (difference 2) the favoured thread gains ~15%
//!   and the victim loses ~69%, reproducing both the 12–16% application
//!   improvements and the near-perfect re-balancing of 4:1-imbalanced pairs
//!   the paper reports;
//! * [`AnalyticModel`] — a one-parameter concave rational curve
//!   `T(s) = (1+k)s / (1+ks)` over the decode share `s`, kept for ablation
//!   studies of the calibration itself.
//!
//! All speed factors are *relative to a dedicated single-thread core* =
//! `1.0`. Two equal-priority threads each run at [`TableModel::smt_equal`]
//! (default 0.8, i.e. SMT yields 1.6× aggregate throughput, in line with
//! published POWER5 SMT gains).

use crate::decode::decode_share;
use crate::priority::HwPriority;
use serde::{Deserialize, Serialize};

/// Instantaneous speed factors for the two contexts of one core.
/// `1.0` = the speed of the same task alone on the core in ST mode.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpeedFactors {
    pub a: f64,
    pub b: f64,
}

impl SpeedFactors {
    pub const IDLE: SpeedFactors = SpeedFactors { a: 0.0, b: 0.0 };
}

/// What the model needs to know about a running task.
///
/// Gaining decode slots and losing decode slots affect real code
/// *asymmetrically*: a compute-bound thread converts extra slots into
/// speed (high gain sensitivity) while a memory-bound thread that is
/// stall-dominated barely notices being starved of them (low loss
/// sensitivity). The companion characterization study (Boneti et al.,
/// ISCA 2008 — reference \[4\] of the paper) measures per-application curves;
/// these two knobs are how the workloads crate encodes each benchmark's.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TaskPerfTraits {
    /// How strongly the task speeds up when *favoured* (relative factor
    /// above 1), in `[0, 1]`. 1 = fully decode-bound.
    pub gain_sensitivity: f64,
    /// How strongly the task slows down when *starved* (relative factor
    /// below 1), in `[0, 1]`. 0 = entirely stall-bound, decode share
    /// irrelevant.
    pub loss_sensitivity: f64,
}

impl TaskPerfTraits {
    /// Equal gain/loss sensitivity (a plain compute-bound thread at 1.0).
    pub fn uniform(s: f64) -> Self {
        TaskPerfTraits { gain_sensitivity: s, loss_sensitivity: s }
    }

    /// Asymmetric sensitivities.
    pub fn new(gain: f64, loss: f64) -> Self {
        TaskPerfTraits { gain_sensitivity: gain, loss_sensitivity: loss }
    }

    fn for_rel(&self, rel: f64) -> f64 {
        if rel >= 1.0 {
            self.gain_sensitivity
        } else {
            self.loss_sensitivity
        }
    }
}

impl Default for TaskPerfTraits {
    fn default() -> Self {
        TaskPerfTraits::uniform(1.0)
    }
}

/// A context as the performance model sees it: empty, or running a task with
/// the given hardware priority and traits.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CtxLoad {
    /// Nothing runs here (or the idle thread, which the kernel parks at a
    /// priority that cedes the core).
    Idle,
    Busy { prio: HwPriority, traits: TaskPerfTraits },
}

/// Maps the state of a core's two contexts to task speed factors.
pub trait PerfModel {
    /// Speed factors for contexts A and B.
    fn speeds(&self, a: CtxLoad, b: CtxLoad) -> SpeedFactors;

    /// Speed of a task running with the sibling context idle/off.
    fn st_speed(&self, traits: TaskPerfTraits) -> f64 {
        self.speeds(CtxLoad::Busy { prio: HwPriority::MEDIUM, traits }, CtxLoad::Idle).a
    }

    /// Speed factors for an n-way core, one per context in order.
    ///
    /// The decode-arbitration table is defined pairwise, so the default
    /// delegates to [`PerfModel::speeds`] for widths ≤ 2 and panics on
    /// wider cores: a wide-SMT topology must run a model that overrides
    /// this ([`AnalyticModel`] does; [`schedsim`'s builder switches to it
    /// automatically for wide cores).
    fn speeds_many(&self, ctxs: &[CtxLoad]) -> Vec<f64> {
        match ctxs {
            [] => Vec::new(),
            [a] => vec![self.speeds(*a, CtxLoad::Idle).a],
            [a, b] => {
                let s = self.speeds(*a, *b);
                vec![s.a, s.b]
            }
            _ => panic!(
                "this SMT performance model is pairwise; cores wider than 2-way \
                 need the analytic model"
            ),
        }
    }
}

/// The default, calibration-table-driven model. See module docs.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TableModel {
    /// Speed of each thread when both run at equal priority, relative to ST.
    pub smt_equal: f64,
    /// `(high, low)` speed factors relative to `smt_equal`, indexed by
    /// priority difference 0..=5.
    pub by_diff: [(f64, f64); 6],
    /// Relative factor for a priority-1 background thread facing a regular
    /// foreground sibling (the foreground sibling gets `st_factor`).
    pub background: f64,
    /// Relative factor for running effectively alone (sibling idle/off or
    /// own priority 7): `smt_equal * st_factor = 1.0` by construction.
    pub st_factor: f64,
}

impl Default for TableModel {
    fn default() -> Self {
        // Calibration rationale (DESIGN.md §3.2):
        // * diff 2 must give a high/low speed *ratio* ≈ 3.7 so that the 4:1
        //   load imbalance of MetBench/BT-MZ can be almost fully absorbed
        //   (Tables III and V show ~100% post-balance utilizations), while
        //   the favoured thread's *speedup* stays ≈ 15% (the applications
        //   improve 12–16%).
        // * The asymmetry grows with the difference, consistent with the
        //   1-in-R decode starvation of Table I and with the paper's
        //   "X% gain may cost 10X%" observation.
        let smt_equal = 0.8;
        TableModel {
            smt_equal,
            by_diff: [
                (1.00, 1.00),
                (1.08, 0.55),
                (1.15, 0.31),
                (1.20, 0.18),
                (1.22, 0.10),
                (1.24, 0.055),
            ],
            background: 0.12,
            st_factor: 1.0 / smt_equal,
        }
    }
}

impl TableModel {
    /// Apply a task's SMT sensitivity to a relative factor: an insensitive
    /// task's speed deviates less from the equal-priority baseline, with
    /// gains and losses scaled independently.
    fn sensitize(rel: f64, traits: TaskPerfTraits) -> f64 {
        1.0 + traits.for_rel(rel).clamp(0.0, 1.0) * (rel - 1.0)
    }

    fn relative_pair(&self, pa: HwPriority, pb: HwPriority) -> (f64, f64) {
        debug_assert!(pa.is_regular() && pb.is_regular());
        let d = (pa.diff(pb) as usize).min(self.by_diff.len() - 1);
        let (high, low) = self.by_diff[d];
        if pa >= pb {
            (high, low)
        } else {
            (low, high)
        }
    }
}

impl PerfModel for TableModel {
    fn speeds(&self, a: CtxLoad, b: CtxLoad) -> SpeedFactors {
        use CtxLoad::*;
        match (a, b) {
            (Idle, Idle) => SpeedFactors::IDLE,
            (Busy { prio, traits }, Idle) => SpeedFactors {
                a: self.solo_speed(prio, traits),
                b: 0.0,
            },
            (Idle, Busy { prio, traits }) => SpeedFactors {
                a: 0.0,
                b: self.solo_speed(prio, traits),
            },
            (Busy { prio: pa, traits: ta }, Busy { prio: pb, traits: tb }) => {
                self.pair_speeds(pa, ta, pb, tb)
            }
        }
    }
}

impl TableModel {
    fn solo_speed(&self, prio: HwPriority, traits: TaskPerfTraits) -> f64 {
        if prio == HwPriority::OFF {
            return 0.0;
        }
        // Alone on the core the thread gets every decode slot regardless of
        // its priority value; it runs at ST speed scaled by sensitivity.
        self.smt_equal * Self::sensitize(self.st_factor, traits)
    }

    fn pair_speeds(
        &self,
        pa: HwPriority,
        ta: TaskPerfTraits,
        pb: HwPriority,
        tb: TaskPerfTraits,
    ) -> SpeedFactors {
        use HwPriority as P;
        // Special levels first (paper §II-B): 0 = off, 7 = ST mode, 1 =
        // background.
        if pa == P::OFF && pb == P::OFF {
            return SpeedFactors::IDLE;
        }
        if pa == P::OFF {
            return SpeedFactors { a: 0.0, b: self.solo_speed(pb, tb) };
        }
        if pb == P::OFF {
            return SpeedFactors { a: self.solo_speed(pa, ta), b: 0.0 };
        }
        if pa == P::VERY_HIGH || pb == P::VERY_HIGH {
            // ST mode: the 7-side owns the core. (7,7) splits evenly.
            if pa == pb {
                return SpeedFactors { a: self.smt_equal, b: self.smt_equal };
            }
            return if pa == P::VERY_HIGH {
                SpeedFactors { a: self.solo_speed(pa, ta), b: 0.0 }
            } else {
                SpeedFactors { a: 0.0, b: self.solo_speed(pb, tb) }
            };
        }
        if pa == P::VERY_LOW || pb == P::VERY_LOW {
            if pa == pb {
                // Two background threads share the core evenly, like an
                // equal-priority pair.
                return SpeedFactors {
                    a: self.smt_equal * Self::sensitize(1.0, ta),
                    b: self.smt_equal * Self::sensitize(1.0, tb),
                };
            }
            // Foreground runs at ~ST speed; background gets scraps.
            return if pa == P::VERY_LOW {
                SpeedFactors {
                    a: self.smt_equal * Self::sensitize(self.background, ta),
                    b: self.smt_equal * Self::sensitize(self.st_factor, tb),
                }
            } else {
                SpeedFactors {
                    a: self.smt_equal * Self::sensitize(self.st_factor, ta),
                    b: self.smt_equal * Self::sensitize(self.background, tb),
                }
            };
        }
        // Regular pair: table lookup.
        let (ra, rb) = self.relative_pair(pa, pb);
        SpeedFactors {
            a: self.smt_equal * Self::sensitize(ra, ta),
            b: self.smt_equal * Self::sensitize(rb, tb),
        }
    }
}

/// Analytic alternative: throughput as a concave function of decode share,
/// `T(s) = (1+k)·s / (1 + k·s)`, normalized so `T(1) = 1`. Larger `k` means
/// stronger diminishing returns. Used for calibration ablations.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct AnalyticModel {
    /// Concavity parameter `k ≥ 0`.
    pub k: f64,
}

impl Default for AnalyticModel {
    fn default() -> Self {
        // k = 3 puts T(0.5) at 0.8, matching the TableModel's equal-priority
        // point.
        AnalyticModel { k: 3.0 }
    }
}

impl AnalyticModel {
    fn throughput(&self, share: f64) -> f64 {
        debug_assert!((0.0..=1.0).contains(&share));
        (1.0 + self.k) * share / (1.0 + self.k * share)
    }

    /// Speed at `share`, sensitized relative to the given equal-share
    /// baseline (T(0.5) for a pair, T(1/n) for an n-way core).
    fn speed_at(&self, share: f64, traits: TaskPerfTraits, equal: f64) -> f64 {
        if share <= 0.0 {
            return 0.0;
        }
        let rel = self.throughput(share) / equal;
        equal * (1.0 + traits.for_rel(rel).clamp(0.0, 1.0) * (rel - 1.0))
    }

    fn speed_of(&self, share: f64, traits: TaskPerfTraits) -> f64 {
        self.speed_at(share, traits, self.throughput(0.5))
    }
}

impl PerfModel for AnalyticModel {
    fn speeds(&self, a: CtxLoad, b: CtxLoad) -> SpeedFactors {
        use CtxLoad::*;
        match (a, b) {
            (Idle, Idle) => SpeedFactors::IDLE,
            (Busy { prio, traits }, Idle) => {
                if prio == HwPriority::OFF {
                    SpeedFactors::IDLE
                } else {
                    SpeedFactors { a: self.speed_of(1.0, traits), b: 0.0 }
                }
            }
            (Idle, Busy { prio, traits }) => {
                if prio == HwPriority::OFF {
                    SpeedFactors::IDLE
                } else {
                    SpeedFactors { a: 0.0, b: self.speed_of(1.0, traits) }
                }
            }
            (Busy { prio: pa, traits: ta }, Busy { prio: pb, traits: tb }) => {
                let split = decode_share(pa, pb);
                SpeedFactors { a: self.speed_of(split.a, ta), b: self.speed_of(split.b, tb) }
            }
        }
    }

    /// n-way generalisation of the decode arbitration: each busy regular
    /// context weighs `2^priority` decode slots (the same geometric
    /// progression Table I's pairwise `R = 2^(|d|+1)` interval encodes),
    /// priority 7 claims the core exclusively, priority 0 is off. Shares
    /// are sensitized against the equal-share point `T(1/n_busy)`, so a
    /// full n-way core of equal peers degrades gracefully instead of
    /// pretending to be a pair.
    fn speeds_many(&self, ctxs: &[CtxLoad]) -> Vec<f64> {
        use CtxLoad::*;
        if ctxs.len() <= 2 {
            // Exact pairwise arbitration where it is defined.
            return match ctxs {
                [] => Vec::new(),
                [a] => vec![self.speeds(*a, Idle).a],
                [a, b] => {
                    let s = self.speeds(*a, *b);
                    vec![s.a, s.b]
                }
                _ => unreachable!(),
            };
        }
        let st_claims: Vec<bool> = ctxs
            .iter()
            .map(|c| matches!(c, Busy { prio, .. } if *prio == HwPriority::VERY_HIGH))
            .collect();
        let any_st = st_claims.iter().any(|&b| b);
        let weights: Vec<f64> = ctxs
            .iter()
            .zip(&st_claims)
            .map(|(c, &st)| match c {
                Idle => 0.0,
                Busy { prio, .. } => {
                    if *prio == HwPriority::OFF || (any_st && !st) {
                        0.0
                    } else {
                        (1u64 << prio.value()) as f64
                    }
                }
            })
            .collect();
        let total: f64 = weights.iter().sum();
        let n_busy = weights.iter().filter(|&&w| w > 0.0).count();
        if total <= 0.0 || n_busy == 0 {
            return vec![0.0; ctxs.len()];
        }
        let equal = self.throughput(1.0 / n_busy as f64);
        ctxs.iter()
            .zip(&weights)
            .map(|(c, &w)| match c {
                Idle => 0.0,
                Busy { traits, .. } => self.speed_at(w / total, *traits, equal),
            })
            .collect()
    }
}

/// Boxed model alias used where the choice is configuration-driven.
pub type SmtPerfModel = Box<dyn PerfModel + Send + Sync>;

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: u8) -> HwPriority {
        HwPriority::new(v).unwrap()
    }

    fn busy(prio: u8) -> CtxLoad {
        CtxLoad::Busy { prio: p(prio), traits: TaskPerfTraits::default() }
    }

    fn busy_sens(prio: u8, s: f64) -> CtxLoad {
        CtxLoad::Busy { prio: p(prio), traits: TaskPerfTraits::uniform(s) }
    }

    #[test]
    fn equal_priorities_split_evenly() {
        let m = TableModel::default();
        let s = m.speeds(busy(4), busy(4));
        assert!((s.a - 0.8).abs() < 1e-12);
        assert!((s.b - 0.8).abs() < 1e-12);
    }

    #[test]
    fn solo_runs_at_st_speed() {
        let m = TableModel::default();
        let s = m.speeds(busy(4), CtxLoad::Idle);
        assert!((s.a - 1.0).abs() < 1e-12);
        assert_eq!(s.b, 0.0);
    }

    #[test]
    fn diff2_working_point_matches_calibration() {
        let m = TableModel::default();
        let s = m.speeds(busy(6), busy(4));
        // Favoured thread ≈ +15% over equal-priority SMT.
        assert!((s.a / 0.8 - 1.15).abs() < 1e-9);
        // Victim ≈ -69%.
        assert!((s.b / 0.8 - 0.31).abs() < 1e-9);
        // Ratio ≈ 3.7: enough to rebalance a 4:1 load split.
        let ratio = s.a / s.b;
        assert!((3.2..4.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn asymmetry_grows_with_difference() {
        // Paper §I conclusion 1: the victim's loss outpaces the winner's
        // gain, increasingly so at larger differences.
        let m = TableModel::default();
        let mut last_gain = 0.0;
        let mut last_loss = 0.0;
        for d in 1..=2u8 {
            let s = m.speeds(busy(4 + d), busy(4));
            let gain = s.a / 0.8 - 1.0;
            let loss = 1.0 - s.b / 0.8;
            assert!(loss > gain, "diff {d}: loss {loss} gain {gain}");
            assert!(gain > last_gain && loss > last_loss);
            last_gain = gain;
            last_loss = loss;
        }
    }

    #[test]
    fn higher_priority_never_slower() {
        let m = TableModel::default();
        for a in 2..=6u8 {
            for b in 2..=6u8 {
                let s = m.speeds(busy(a), busy(b));
                if a > b {
                    assert!(s.a >= s.b, "({a},{b})");
                } else if a < b {
                    assert!(s.a <= s.b, "({a},{b})");
                }
            }
        }
    }

    #[test]
    fn off_context_gives_sibling_full_core() {
        let m = TableModel::default();
        let s = m.speeds(busy(0), busy(4));
        assert_eq!(s.a, 0.0);
        assert!((s.b - 1.0).abs() < 1e-12);
    }

    #[test]
    fn st_mode_priority7() {
        let m = TableModel::default();
        let s = m.speeds(busy(7), busy(4));
        assert!((s.a - 1.0).abs() < 1e-12);
        assert_eq!(s.b, 0.0);
    }

    #[test]
    fn background_thread_gets_scraps() {
        let m = TableModel::default();
        let s = m.speeds(busy(1), busy(4));
        assert!(s.a < 0.15, "background speed {}", s.a);
        assert!((s.b - 1.0).abs() < 1e-9, "foreground speed {}", s.b);
    }

    #[test]
    fn insensitive_task_barely_reacts() {
        let m = TableModel::default();
        let s = m.speeds(busy_sens(6, 0.0), busy_sens(4, 0.0));
        // Zero sensitivity → both stuck at the equal-priority baseline.
        assert!((s.a - 0.8).abs() < 1e-12);
        assert!((s.b - 0.8).abs() < 1e-12);

        let s_half = m.speeds(busy_sens(6, 0.5), busy_sens(4, 0.5));
        let s_full = m.speeds(busy(6), busy(4));
        assert!(s_half.a < s_full.a && s_half.a > 0.8);
        assert!(s_half.b > s_full.b && s_half.b < 0.8);
    }

    #[test]
    fn st_speed_helper() {
        let m = TableModel::default();
        assert!((m.st_speed(TaskPerfTraits::default()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn analytic_model_basics() {
        let m = AnalyticModel::default();
        let s = m.speeds(busy(4), busy(4));
        assert!((s.a - s.b).abs() < 1e-12);
        assert!((s.a - 0.8).abs() < 1e-9, "equal point {}", s.a);
        let solo = m.speeds(busy(4), CtxLoad::Idle);
        assert!((solo.a - 1.0).abs() < 1e-9);
    }

    #[test]
    fn analytic_model_is_concave_in_share() {
        let m = AnalyticModel { k: 3.0 };
        // Winner's relative gain < victim's relative loss.
        let s = m.speeds(busy(6), busy(4));
        let gain = s.a / 0.8 - 1.0;
        let loss = 1.0 - s.b / 0.8;
        assert!(loss > gain);
    }

    #[test]
    fn speeds_many_default_delegates_and_refuses_wide() {
        let m = TableModel::default();
        let pair = m.speeds_many(&[busy(6), busy(4)]);
        let s = m.speeds(busy(6), busy(4));
        assert_eq!(pair, vec![s.a, s.b]);
        let solo = m.speeds_many(&[busy(4)]);
        assert!((solo[0] - 1.0).abs() < 1e-12);
        assert!(std::panic::catch_unwind(|| {
            TableModel::default().speeds_many(&[busy(4), busy(4), busy(4), busy(4)])
        })
        .is_err());
    }

    #[test]
    fn analytic_speeds_many_covers_wide_cores() {
        let m = AnalyticModel::default();
        // Four equal peers split the core evenly and each run at the
        // 4-way equal point T(1/4).
        let s = m.speeds_many(&[busy(4), busy(4), busy(4), busy(4)]);
        assert_eq!(s.len(), 4);
        for &v in &s {
            assert!((v - s[0]).abs() < 1e-12);
        }
        assert!(s[0] < 0.8 && s[0] > 0.3, "4-way equal point {}", s[0]);
        // A favoured context outruns its siblings; idle contexts are 0.
        let s = m.speeds_many(&[busy(6), busy(4), CtxLoad::Idle, busy(4)]);
        assert!(s[0] > s[1] && s[1] == s[3]);
        assert_eq!(s[2], 0.0);
        // Priority 7 owns the core.
        let s = m.speeds_many(&[busy(7), busy(4), busy(4), busy(4)]);
        assert!((s[0] - 1.0).abs() < 1e-9);
        assert_eq!(&s[1..], &[0.0, 0.0, 0.0]);
        // Pairwise input still goes through the exact decode arbitration.
        let pair = m.speeds_many(&[busy(6), busy(4)]);
        let exact = m.speeds(busy(6), busy(4));
        assert_eq!(pair, vec![exact.a, exact.b]);
    }

    #[test]
    fn both_models_agree_things_sum_below_st_times_two() {
        // Aggregate SMT throughput can exceed 1× ST but never 2× ST.
        let tm = TableModel::default();
        let am = AnalyticModel::default();
        for a in 2..=6u8 {
            for b in 2..=6u8 {
                for s in [tm.speeds(busy(a), busy(b)), am.speeds(busy(a), busy(b))] {
                    let total = s.a + s.b;
                    assert!(total > 0.9 && total < 2.0, "({a},{b}) total {total}");
                }
            }
        }
    }
}
