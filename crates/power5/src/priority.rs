//! Hardware thread priorities and the software interface for setting them
//! (paper §II-B, Table II).
//!
//! A priority is an integer in `0..=7`. Software changes the priority of the
//! *current* hardware thread by issuing a nop-form `or X,X,X` instruction;
//! which values are reachable depends on the privilege level of the issuing
//! code:
//!
//! | Priority | Level        | Privilege   | or-nop        |
//! |----------|--------------|-------------|---------------|
//! | 0        | Thread off   | Hypervisor  | — (no encoding)|
//! | 1        | Very low     | Supervisor  | `or 31,31,31` |
//! | 2        | Low          | User        | `or 1,1,1`    |
//! | 3        | Medium-Low   | User        | `or 6,6,6`    |
//! | 4        | Medium       | User        | `or 2,2,2`    |
//! | 5        | Medium-high  | Supervisor  | `or 5,5,5`    |
//! | 6        | High         | Supervisor  | `or 3,3,3`    |
//! | 7        | Very high    | Hypervisor  | `or 7,7,7`    |

use serde::{Deserialize, Serialize};
use std::fmt;

/// A POWER5 hardware thread priority (0–7).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct HwPriority(u8);

/// The privilege level of the code issuing a priority change.
///
/// On the real machine the OS runs at supervisor level and user code at user
/// level; the hypervisor owns the extremes (thread off / single-thread mode).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum PrivilegeLevel {
    User,
    Supervisor,
    Hypervisor,
}

/// Why a priority operation was rejected.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PriorityError {
    /// Value outside `0..=7`.
    OutOfRange(u8),
    /// The issuing privilege level may not set this priority.
    InsufficientPrivilege { requested: HwPriority, level: PrivilegeLevel },
    /// No `or`-nop encoding exists (priority 0 is set by the hypervisor
    /// through the thread-control facilities, not by an instruction).
    NoEncoding(HwPriority),
}

impl fmt::Display for PriorityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PriorityError::OutOfRange(v) => write!(f, "priority {v} out of range 0..=7"),
            PriorityError::InsufficientPrivilege { requested, level } => {
                write!(f, "privilege {level:?} may not set priority {requested}")
            }
            PriorityError::NoEncoding(p) => {
                write!(f, "priority {p} has no or-nop encoding")
            }
        }
    }
}

impl std::error::Error for PriorityError {}

impl HwPriority {
    /// Context switched off.
    pub const OFF: HwPriority = HwPriority(0);
    /// Background thread: receives only resources left over by the sibling.
    pub const VERY_LOW: HwPriority = HwPriority(1);
    pub const LOW: HwPriority = HwPriority(2);
    pub const MEDIUM_LOW: HwPriority = HwPriority(3);
    /// The default priority every task starts with (paper §IV-B).
    pub const MEDIUM: HwPriority = HwPriority(4);
    pub const MEDIUM_HIGH: HwPriority = HwPriority(5);
    pub const HIGH: HwPriority = HwPriority(6);
    /// Single-thread mode: the sibling context is off.
    pub const VERY_HIGH: HwPriority = HwPriority(7);

    /// Construct from a raw value, validating the range.
    pub fn new(v: u8) -> Result<HwPriority, PriorityError> {
        if v <= 7 {
            Ok(HwPriority(v))
        } else {
            Err(PriorityError::OutOfRange(v))
        }
    }

    /// Raw numeric value.
    #[inline]
    pub const fn value(self) -> u8 {
        self.0
    }

    /// The lowest privilege level allowed to set this priority (Table II).
    pub const fn required_privilege(self) -> PrivilegeLevel {
        match self.0 {
            0 | 7 => PrivilegeLevel::Hypervisor,
            1 | 5 | 6 => PrivilegeLevel::Supervisor,
            _ => PrivilegeLevel::User, // 2, 3, 4
        }
    }

    /// Whether `level` suffices to set this priority.
    pub fn allowed_at(self, level: PrivilegeLevel) -> bool {
        level >= self.required_privilege()
    }

    /// The register number `X` of the `or X,X,X` nop that requests this
    /// priority, or `None` for priority 0 (Table II).
    pub const fn or_nop_register(self) -> Option<u8> {
        match self.0 {
            1 => Some(31),
            2 => Some(1),
            3 => Some(6),
            4 => Some(2),
            5 => Some(5),
            6 => Some(3),
            7 => Some(7),
            _ => None,
        }
    }

    /// Decode an `or X,X,X` nop register number back into the priority it
    /// requests, if `X` is one of the architected encodings.
    pub const fn from_or_nop_register(x: u8) -> Option<HwPriority> {
        match x {
            31 => Some(HwPriority(1)),
            1 => Some(HwPriority(2)),
            6 => Some(HwPriority(3)),
            2 => Some(HwPriority(4)),
            5 => Some(HwPriority(5)),
            3 => Some(HwPriority(6)),
            7 => Some(HwPriority(7)),
            _ => None,
        }
    }

    /// Human-readable level name as in paper Table II.
    pub const fn level_name(self) -> &'static str {
        match self.0 {
            0 => "Thread off",
            1 => "Very low",
            2 => "Low",
            3 => "Medium-Low",
            4 => "Medium",
            5 => "Medium-high",
            6 => "High",
            _ => "Very high",
        }
    }

    /// Saturating increment within the architected range.
    pub fn raised(self) -> HwPriority {
        HwPriority((self.0 + 1).min(7))
    }

    /// Saturating decrement within the architected range.
    pub fn lowered(self) -> HwPriority {
        HwPriority(self.0.saturating_sub(1))
    }

    /// Clamp into `[lo, hi]`.
    pub fn clamp(self, lo: HwPriority, hi: HwPriority) -> HwPriority {
        HwPriority(self.0.clamp(lo.0, hi.0))
    }

    /// True for the "normal" SMT priorities where Table I arbitration
    /// applies (2–6); 0, 1 and 7 have special semantics.
    pub const fn is_regular(self) -> bool {
        matches!(self.0, 2..=6)
    }

    /// Absolute priority difference with another context.
    pub fn diff(self, other: HwPriority) -> u8 {
        self.0.abs_diff(other.0)
    }
}

impl fmt::Debug for HwPriority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "prio{}", self.0)
    }
}

impl fmt::Display for HwPriority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl TryFrom<u8> for HwPriority {
    type Error = PriorityError;
    fn try_from(v: u8) -> Result<Self, Self::Error> {
        HwPriority::new(v)
    }
}

/// Validate a full priority-set request: range, encoding and privilege.
///
/// This is the software-visible semantics of issuing the `or`-nop for
/// `requested` at `level`. Returns the priority that takes effect.
pub fn issue_or_nop(
    requested: HwPriority,
    level: PrivilegeLevel,
) -> Result<HwPriority, PriorityError> {
    if requested.or_nop_register().is_none() {
        return Err(PriorityError::NoEncoding(requested));
    }
    if !requested.allowed_at(level) {
        return Err(PriorityError::InsufficientPrivilege { requested, level });
    }
    Ok(requested)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_validation() {
        assert!(HwPriority::new(7).is_ok());
        assert_eq!(HwPriority::new(8), Err(PriorityError::OutOfRange(8)));
    }

    #[test]
    fn privilege_matrix_matches_table2() {
        use PrivilegeLevel::*;
        let expect = [
            (0, Hypervisor),
            (1, Supervisor),
            (2, User),
            (3, User),
            (4, User),
            (5, Supervisor),
            (6, Supervisor),
            (7, Hypervisor),
        ];
        for (v, lvl) in expect {
            assert_eq!(HwPriority::new(v).unwrap().required_privilege(), lvl, "prio {v}");
        }
    }

    #[test]
    fn supervisor_can_set_1_through_6_only() {
        // Paper: "The OS (supervisor) can set 6 out of 8 priority values,
        // from 1 to 6".
        let settable: Vec<u8> = (0..=7)
            .filter(|&v| HwPriority::new(v).unwrap().allowed_at(PrivilegeLevel::Supervisor))
            .collect();
        assert_eq!(settable, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn user_can_set_2_3_4_only() {
        let settable: Vec<u8> = (0..=7)
            .filter(|&v| HwPriority::new(v).unwrap().allowed_at(PrivilegeLevel::User))
            .collect();
        assert_eq!(settable, vec![2, 3, 4]);
    }

    #[test]
    fn hypervisor_spans_whole_range() {
        assert!((0..=7).all(|v| HwPriority::new(v).unwrap().allowed_at(PrivilegeLevel::Hypervisor)));
    }

    #[test]
    fn or_nop_encodings_match_table2() {
        let expect = [(1, 31), (2, 1), (3, 6), (4, 2), (5, 5), (6, 3), (7, 7)];
        for (prio, reg) in expect {
            let p = HwPriority::new(prio).unwrap();
            assert_eq!(p.or_nop_register(), Some(reg), "prio {prio}");
            assert_eq!(HwPriority::from_or_nop_register(reg), Some(p), "reg {reg}");
        }
        assert_eq!(HwPriority::OFF.or_nop_register(), None);
        assert_eq!(HwPriority::from_or_nop_register(4), None);
    }

    #[test]
    fn issue_or_nop_enforces_privilege() {
        assert_eq!(
            issue_or_nop(HwPriority::HIGH, PrivilegeLevel::User),
            Err(PriorityError::InsufficientPrivilege {
                requested: HwPriority::HIGH,
                level: PrivilegeLevel::User
            })
        );
        assert_eq!(
            issue_or_nop(HwPriority::HIGH, PrivilegeLevel::Supervisor),
            Ok(HwPriority::HIGH)
        );
        assert_eq!(
            issue_or_nop(HwPriority::OFF, PrivilegeLevel::Hypervisor),
            Err(PriorityError::NoEncoding(HwPriority::OFF))
        );
    }

    #[test]
    fn raise_lower_clamp() {
        assert_eq!(HwPriority::VERY_HIGH.raised(), HwPriority::VERY_HIGH);
        assert_eq!(HwPriority::OFF.lowered(), HwPriority::OFF);
        assert_eq!(HwPriority::MEDIUM.raised().value(), 5);
        assert_eq!(HwPriority::MEDIUM.lowered().value(), 3);
        let p = HwPriority::VERY_HIGH.clamp(HwPriority::MEDIUM, HwPriority::HIGH);
        assert_eq!(p, HwPriority::HIGH);
    }

    #[test]
    fn regular_priorities() {
        assert!(!HwPriority::OFF.is_regular());
        assert!(!HwPriority::VERY_LOW.is_regular());
        assert!(!HwPriority::VERY_HIGH.is_regular());
        assert!((2..=6).all(|v| HwPriority::new(v).unwrap().is_regular()));
    }

    #[test]
    fn diff_is_symmetric() {
        let a = HwPriority::HIGH;
        let b = HwPriority::MEDIUM;
        assert_eq!(a.diff(b), 2);
        assert_eq!(b.diff(a), 2);
    }

    #[test]
    fn level_names() {
        assert_eq!(HwPriority::OFF.level_name(), "Thread off");
        assert_eq!(HwPriority::MEDIUM.level_name(), "Medium");
        assert_eq!(HwPriority::VERY_HIGH.level_name(), "Very high");
    }
}
