//! Processor topology: an explicit scheduling-domain tree.
//!
//! Linux sees each hardware context (SMT thread) as one CPU. The paper's
//! evaluation machine is an IBM OpenPower 710 with a single POWER5: one chip,
//! two cores, two contexts per core — four logical CPUs, balanced over a
//! three-level domain hierarchy (paper §IV-A). The fleet the ROADMAP aims at
//! is bigger than that triple: nodes are *trees* (SMT ⊂ core ⊂ socket ⊂
//! NUMA node ⊂ machine) of arbitrary depth, in the spirit of Thibault's
//! bubble scheduler, and each level has its own migration cost.
//!
//! A [`Topology`] is a *regular* tree described innermost-first by its
//! [`Level`]s: `levels[0]` groups hardware contexts into its
//! [`LevelKind`] unit (usually a core), each further level groups the
//! units below it, and the last level is always the machine root. Because
//! the tree is regular, every domain is a contiguous CPU range and all
//! domain arithmetic is O(1) index math — no per-call linear filters.
//!
//! Shapes are written in a compact spec grammar, outermost container
//! first: `2s2c2t` is two sockets of two cores of two SMT threads;
//! `2x2x2c2t` adds untagged outer levels that are assigned the next
//! hierarchy positions (socket, NUMA, ...) automatically. Named presets
//! (`openpower-710`, `2-socket`, `numa`, `wide-smt`, ...) parse through
//! the same entry point, and [`Topology::render_spec`] is the canonical
//! inverse of [`Topology::parse`].

use serde::Value;
use simcore::snapshot::{Snapshot, SnapshotError, SnapshotReader, SnapshotWriter};
use std::fmt;
use std::ops::Range;

/// Index of a chip in the machine.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, serde::Serialize, serde::Deserialize)]
pub struct ChipId(pub usize);

/// Global index of a core (across all chips).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, serde::Serialize, serde::Deserialize)]
pub struct CoreId(pub usize);

/// Index of a context *within its core* (0 or 1 on POWER5).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, serde::Serialize, serde::Deserialize)]
pub struct ContextId(pub usize);

/// A logical CPU: what the OS schedules on. One per hardware context.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize)]
pub struct CpuId(pub usize);

impl fmt::Debug for CpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

impl fmt::Display for CpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

/// Levels of the classic three-level hierarchy, smallest first. Kept as
/// the stable coarse-grained API over the underlying tree: `Core` is the
/// innermost grouping level, `Chip` the socket (or NUMA node when the
/// tree has no socket level), `System` the machine root.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, serde::Serialize, serde::Deserialize)]
pub enum DomainLevel {
    /// A single hardware context (one logical CPU).
    Context,
    /// The sibling contexts of one core.
    Core,
    /// All contexts of one chip.
    Chip,
    /// The whole machine.
    System,
}

impl DomainLevel {
    /// Domain levels from the innermost outwards, as the balancer walks them.
    pub const ASCENDING: [DomainLevel; 4] =
        [DomainLevel::Context, DomainLevel::Core, DomainLevel::Chip, DomainLevel::System];
}

/// What kind of unit a tree level groups the level below into.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum LevelKind {
    /// A core grouping its SMT hardware contexts.
    Core,
    /// A socket (physical chip) grouping cores.
    Socket,
    /// A NUMA node grouping sockets (or cores directly).
    Numa,
    /// The machine root — always, and only, the outermost level.
    Machine,
    /// An extra grouping level beyond the named ones (board, rack, ...),
    /// numbered from the innermost custom level outwards.
    Custom(u8),
}

impl LevelKind {
    /// Human-readable label (`core`, `socket`, `numa`, `machine`, `x0`...).
    pub fn label(&self) -> String {
        match self {
            LevelKind::Core => "core".into(),
            LevelKind::Socket => "socket".into(),
            LevelKind::Numa => "numa".into(),
            LevelKind::Machine => "machine".into(),
            LevelKind::Custom(j) => format!("x{j}"),
        }
    }
}

/// One level of the scheduling-domain tree: `width` units of the level
/// below form one unit of this level's `kind`, and migrating a task
/// between two CPUs whose lowest common domain is this level costs
/// `cost` (abstract units, monotone non-decreasing toward the root).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Level {
    pub kind: LevelKind,
    pub width: usize,
    pub cost: u32,
}

/// Why a topology could not be built. The old constructor's
/// `threads_per_core <= 2` panic is gone: wide SMT is a valid shape (the
/// analytic performance model covers it); only genuinely malformed trees
/// are errors, and they are typed, not panics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TopologyError {
    /// A level has width 0 — the tree would contain no CPUs.
    ZeroWidth,
    /// The tree describes more CPUs than the simulator will model.
    TooManyCpus { cpus: usize, max: usize },
    /// Migration costs must not decrease toward the root.
    NonMonotoneCost { level: usize },
    /// The spec string does not parse.
    Spec(String),
    /// The NUMA distance matrix is malformed.
    BadDistances(String),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::ZeroWidth => write!(f, "empty topology (a level has width 0)"),
            TopologyError::TooManyCpus { cpus, max } => {
                write!(f, "topology has {cpus} CPUs; the simulator caps at {max}")
            }
            TopologyError::NonMonotoneCost { level } => {
                write!(f, "migration cost decreases at level {level}; costs must be monotone toward the root")
            }
            TopologyError::Spec(msg) => write!(f, "bad topology spec: {msg}"),
            TopologyError::BadDistances(msg) => write!(f, "bad NUMA distance matrix: {msg}"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// Hard cap on modelled CPUs, so a typo'd spec fails typed instead of
/// allocating the world.
pub const MAX_CPUS: usize = 1 << 16;
/// Hard cap on tree depth.
pub const MAX_LEVELS: usize = 12;

/// Default NUMA distances in the ACPI SLIT convention: local 10,
/// remote 20.
const NUMA_LOCAL: u32 = 10;
const NUMA_REMOTE: u32 = 20;

/// Static machine topology: a regular scheduling-domain tree.
#[derive(Clone, Debug, PartialEq)]
pub struct Topology {
    /// Innermost-first; the last entry is always the machine root.
    levels: Vec<Level>,
    /// `spans[l]` = CPUs per one level-`l` unit (cumulative width product).
    spans: Vec<usize>,
    /// `numa_count x numa_count` distance matrix (SLIT convention).
    numa_distances: Vec<Vec<u32>>,
}

fn default_cost(kind: LevelKind) -> u32 {
    match kind {
        LevelKind::Core => 3,
        LevelKind::Socket => 10,
        LevelKind::Numa => 30,
        LevelKind::Custom(j) => 40 + 10 * u32::from(j),
        LevelKind::Machine => 50,
    }
}

impl Topology {
    /// Build a tree from explicit levels (innermost-first; the last must
    /// be the `Machine` root). Validates widths, depth, the CPU cap, and
    /// cost monotonicity, then derives spans and default NUMA distances.
    pub fn try_from_levels(levels: Vec<Level>) -> Result<Topology, TopologyError> {
        if levels.is_empty() || levels.len() > MAX_LEVELS {
            return Err(TopologyError::Spec(format!(
                "tree depth must be 1..={MAX_LEVELS}, got {}",
                levels.len()
            )));
        }
        if levels.last().map(|l| l.kind) != Some(LevelKind::Machine) {
            return Err(TopologyError::Spec("the outermost level must be the machine root".into()));
        }
        let mut spans = Vec::with_capacity(levels.len());
        let mut span = 1usize;
        for (i, level) in levels.iter().enumerate() {
            if level.width == 0 {
                return Err(TopologyError::ZeroWidth);
            }
            span = span.checked_mul(level.width).filter(|&s| s <= MAX_CPUS).ok_or(
                TopologyError::TooManyCpus { cpus: usize::MAX, max: MAX_CPUS },
            )?;
            spans.push(span);
            if i > 0 && level.cost < levels[i - 1].cost {
                return Err(TopologyError::NonMonotoneCost { level: i });
            }
        }
        let mut t = Topology { levels, spans, numa_distances: Vec::new() };
        t.numa_distances = t.default_numa_distances();
        Ok(t)
    }

    fn default_numa_distances(&self) -> Vec<Vec<u32>> {
        let n = self.numa_count();
        (0..n)
            .map(|i| (0..n).map(|j| if i == j { NUMA_LOCAL } else { NUMA_REMOTE }).collect())
            .collect()
    }

    /// Replace the NUMA distance matrix. Must be `numa_count x
    /// numa_count`, symmetric, with the diagonal no larger than any
    /// off-diagonal entry in its row.
    // Index pairs (i,j)/(j,i) are the subject of the symmetry check;
    // iterator adapters would obscure that.
    #[allow(clippy::needless_range_loop)]
    pub fn with_numa_distances(mut self, m: Vec<Vec<u32>>) -> Result<Topology, TopologyError> {
        let n = self.numa_count();
        if m.len() != n || m.iter().any(|row| row.len() != n) {
            return Err(TopologyError::BadDistances(format!("expected a {n}x{n} matrix")));
        }
        for i in 0..n {
            for j in 0..n {
                if m[i][j] != m[j][i] {
                    return Err(TopologyError::BadDistances(format!(
                        "not symmetric at ({i},{j})"
                    )));
                }
                if m[i][j] < m[i][i] {
                    return Err(TopologyError::BadDistances(format!(
                        "remote distance ({i},{j}) below local ({i},{i})"
                    )));
                }
            }
        }
        self.numa_distances = m;
        Ok(self)
    }

    /// Override per-level migration costs (innermost-first, one per
    /// level); re-validates monotonicity.
    pub fn with_level_costs(mut self, costs: &[u32]) -> Result<Topology, TopologyError> {
        if costs.len() != self.levels.len() {
            return Err(TopologyError::Spec(format!(
                "expected {} costs, got {}",
                self.levels.len(),
                costs.len()
            )));
        }
        for (level, &c) in self.levels.iter_mut().zip(costs) {
            level.cost = c;
        }
        let distances = std::mem::take(&mut self.numa_distances);
        Topology::try_from_levels(self.levels).map(|mut t| {
            t.numa_distances = distances;
            t
        })
    }

    /// A classic SMP/SMT triple: `chips` sockets of `cores_per_chip`
    /// cores of `threads_per_core` contexts.
    ///
    /// # Panics
    /// If any dimension is zero. Wide SMT (`threads_per_core > 2`) is a
    /// valid shape now: the decode-arbitration table model stays 2-way,
    /// wider cores are covered by the analytic performance model.
    pub fn new(chips: usize, cores_per_chip: usize, threads_per_core: usize) -> Self {
        Topology::try_new(chips, cores_per_chip, threads_per_core).expect("empty topology")
    }

    /// Fallible form of [`Topology::new`].
    pub fn try_new(
        chips: usize,
        cores_per_chip: usize,
        threads_per_core: usize,
    ) -> Result<Topology, TopologyError> {
        if chips == 0 || cores_per_chip == 0 || threads_per_core == 0 {
            return Err(TopologyError::ZeroWidth);
        }
        Topology::try_from_levels(vec![
            Level { kind: LevelKind::Core, width: threads_per_core, cost: default_cost(LevelKind::Core) },
            Level { kind: LevelKind::Socket, width: cores_per_chip, cost: default_cost(LevelKind::Socket) },
            Level { kind: LevelKind::Machine, width: chips, cost: default_cost(LevelKind::Machine) },
        ])
    }

    /// The paper's evaluation machine: one POWER5 chip, 2 cores × 2 SMT.
    pub fn openpower_710() -> Self {
        Topology::new(1, 2, 2)
    }

    /// A single core in single-thread mode (useful in unit tests).
    pub fn single_core_st() -> Self {
        Topology::new(1, 1, 1)
    }

    /// Named preset shapes, the `--topology` vocabulary next to raw specs.
    pub fn preset(name: &str) -> Option<Topology> {
        let spec = match name {
            "openpower-710" => return Some(Topology::openpower_710()),
            "single-core-st" => return Some(Topology::single_core_st()),
            "2-socket" => "2s2c2t",
            // ≥3-level heterogeneous reference tree: 2 NUMA nodes, each
            // holding 2 dual-thread cores.
            "numa" => "2n2c2t",
            // One 4-way SMT core — exercises the analytic wide-SMT model.
            "wide-smt" => "1c4t",
            _ => return None,
        };
        Some(Topology::parse_spec(spec).expect("preset specs parse"))
    }

    /// Parse `--topology` input: a named preset or a spec string.
    pub fn parse(input: &str) -> Result<Topology, TopologyError> {
        let input = input.trim();
        if let Some(t) = Topology::preset(input) {
            return Ok(t);
        }
        Topology::parse_spec(input)
    }

    /// Parse the spec grammar. A spec is a sequence of `<count><tag?>`
    /// tokens, outermost container first, optionally separated by `x`:
    /// tags pin a token to a hierarchy position (`t` threads, `c` cores,
    /// `s` sockets, `n` NUMA nodes), untagged tokens take the next
    /// position inward-out, and positions must strictly ascend (a socket
    /// cannot live inside a core). `2s2c2t` = 2 sockets × 2 cores ×
    /// 2 threads; `2x2x2c2t` = 2 NUMA nodes × 2 sockets × 2 cores ×
    /// 2 threads.
    pub fn parse_spec(spec: &str) -> Result<Topology, TopologyError> {
        // Lex: (count, Option<rank>) tokens, outermost-first as written.
        let mut tokens: Vec<(usize, Option<u8>)> = Vec::new();
        let mut chars = spec.chars().peekable();
        while let Some(&ch) = chars.peek() {
            if ch == 'x' || ch == 'X' {
                chars.next();
                continue;
            }
            if !ch.is_ascii_digit() {
                return Err(TopologyError::Spec(format!("unexpected `{ch}` in `{spec}`")));
            }
            let mut count = 0usize;
            while let Some(&d) = chars.peek() {
                let Some(v) = d.to_digit(10) else { break };
                chars.next();
                count = count
                    .checked_mul(10)
                    .and_then(|c| c.checked_add(v as usize))
                    .ok_or_else(|| TopologyError::Spec(format!("count overflow in `{spec}`")))?;
            }
            let rank = match chars.peek() {
                Some('t' | 'T') => Some(0),
                Some('c' | 'C') => Some(1),
                Some('s' | 'S') => Some(2),
                Some('n' | 'N') => Some(3),
                _ => None,
            };
            if rank.is_some() {
                chars.next();
            }
            tokens.push((count, rank));
        }
        if tokens.is_empty() {
            return Err(TopologyError::Spec(format!("no levels in `{spec}`")));
        }
        // Assign hierarchy ranks innermost-first: tagged tokens pin their
        // position (skips allowed), untagged take the next one; ranks must
        // strictly ascend outward.
        tokens.reverse();
        let mut ranked: Vec<(usize, u8)> = Vec::with_capacity(tokens.len() + 2);
        let mut next_rank = 0u8;
        for (count, tag) in tokens {
            let rank = match tag {
                Some(r) if r < next_rank => {
                    return Err(TopologyError::Spec(format!(
                        "`{spec}` nests levels out of hierarchy order"
                    )))
                }
                Some(r) => r,
                None => next_rank,
            };
            ranked.push((count, rank));
            next_rank = rank + 1;
        }
        // Normalize: an implicit single thread per innermost unit, and an
        // implicit single-core level when only a thread count was given,
        // so every tree has a Core grouping level.
        if ranked[0].1 != 0 {
            ranked.insert(0, (1, 0));
        }
        if ranked.len() == 1 {
            ranked.push((1, 1));
        }
        // Build levels: level i groups the units counted by token i into
        // the unit of token i+1; the outermost level is the machine root.
        let kind_of_rank = |rank: u8| match rank {
            1 => LevelKind::Core,
            2 => LevelKind::Socket,
            3 => LevelKind::Numa,
            r => LevelKind::Custom(r - 4),
        };
        let mut levels = Vec::with_capacity(ranked.len());
        for i in 0..ranked.len() {
            let kind = if i + 1 == ranked.len() {
                LevelKind::Machine
            } else {
                kind_of_rank(ranked[i + 1].1)
            };
            levels.push(Level { kind, width: ranked[i].0, cost: default_cost(kind) });
        }
        // The machine root cost must dominate whatever custom levels sit
        // below it.
        if let Some((root, inner)) = levels.split_last_mut() {
            let inner_max = inner.iter().map(|l| l.cost).max().unwrap_or(0);
            root.cost = root.cost.max(inner_max.saturating_add(10));
        }
        Topology::try_from_levels(levels)
    }

    /// Render the canonical spec string: `parse(render_spec())`
    /// reproduces the same tree (the round-trip property test).
    pub fn render_spec(&self) -> String {
        let mut parts: Vec<String> = Vec::with_capacity(self.levels.len());
        for (i, level) in self.levels.iter().enumerate() {
            // Token i counts the units formed by level i-1 (hardware
            // contexts for i == 0).
            let unit = if i == 0 { Some('t') } else {
                match self.levels[i - 1].kind {
                    LevelKind::Core => Some('c'),
                    LevelKind::Socket => Some('s'),
                    LevelKind::Numa => Some('n'),
                    // Custom units render untagged; parse re-assigns them
                    // positionally.
                    LevelKind::Custom(_) => None,
                    LevelKind::Machine => None,
                }
            };
            parts.push(match unit {
                Some(u) => format!("{}{u}", level.width),
                None => format!("{}", level.width),
            });
        }
        parts.reverse();
        // Untagged tokens need an `x` separator so digits don't merge.
        let mut out = String::new();
        for (i, p) in parts.iter().enumerate() {
            if i > 0 && !parts[i - 1].ends_with(|c: char| c.is_ascii_alphabetic()) {
                out.push('x');
            }
            out.push_str(p);
        }
        out
    }

    // ------------------------------------------------------------------
    // Tree API
    // ------------------------------------------------------------------

    /// Number of grouping levels (the machine root included).
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// The levels, innermost-first.
    pub fn levels(&self) -> &[Level] {
        &self.levels
    }

    /// One level of the tree.
    pub fn level(&self, l: usize) -> &Level {
        &self.levels[l]
    }

    /// CPUs per one level-`l` unit.
    pub fn span(&self, l: usize) -> usize {
        self.spans[l]
    }

    /// Number of level-`l` units in the machine.
    pub fn num_groups(&self, l: usize) -> usize {
        self.num_cpus() / self.spans[l]
    }

    /// The contiguous CPU index range of the level-`l` unit containing
    /// `cpu` — O(1), the tree's replacement for per-domain CPU lists.
    pub fn group_range(&self, cpu: CpuId, l: usize) -> Range<usize> {
        assert!(cpu.0 < self.num_cpus(), "cpu {cpu} out of range");
        let span = self.spans[l];
        let base = (cpu.0 / span) * span;
        base..base + span
    }

    /// Innermost level of the given kind, if the tree has one.
    pub fn level_of_kind(&self, kind: LevelKind) -> Option<usize> {
        self.levels.iter().position(|l| l.kind == kind)
    }

    /// Cost of migrating a task between two CPUs: the cost of the
    /// innermost level whose domain contains both (0 when they are the
    /// same CPU). Monotone non-decreasing in tree distance by
    /// construction.
    pub fn migration_cost(&self, a: CpuId, b: CpuId) -> u32 {
        assert!(a.0 < self.num_cpus() && b.0 < self.num_cpus(), "cpu out of range");
        if a == b {
            return 0;
        }
        for (l, level) in self.levels.iter().enumerate() {
            let span = self.spans[l];
            if a.0 / span == b.0 / span {
                return level.cost;
            }
        }
        // INVARIANT: the machine root spans every CPU, so the loop above
        // always returns.
        unreachable!("machine root contains all CPUs")
    }

    // ------------------------------------------------------------------
    // NUMA
    // ------------------------------------------------------------------

    /// CPUs per NUMA node (the whole machine when the tree has no NUMA
    /// level).
    pub fn numa_span(&self) -> usize {
        self.level_of_kind(LevelKind::Numa)
            .map_or_else(|| self.num_cpus(), |l| self.spans[l])
    }

    /// Number of NUMA nodes.
    pub fn numa_count(&self) -> usize {
        self.num_cpus() / self.numa_span()
    }

    /// The NUMA node a CPU belongs to.
    pub fn numa_node_of(&self, cpu: CpuId) -> usize {
        assert!(cpu.0 < self.num_cpus(), "cpu {cpu} out of range");
        cpu.0 / self.numa_span()
    }

    /// SLIT-style distance between two NUMA nodes (local = 10).
    pub fn numa_distance(&self, a: usize, b: usize) -> u32 {
        self.numa_distances[a][b]
    }

    /// The full distance matrix.
    pub fn numa_distances(&self) -> &[Vec<u32>] {
        &self.numa_distances
    }

    // ------------------------------------------------------------------
    // Classic accessors, derived from the tree
    // ------------------------------------------------------------------

    /// CPUs per core: the span of the innermost `Core` level (1 when the
    /// tree groups contexts into something else directly).
    fn core_span(&self) -> usize {
        self.level_of_kind(LevelKind::Core).map_or(1, |l| self.spans[l])
    }

    /// CPUs per "chip" in the classic sense: the socket span, falling
    /// back to the NUMA node and then the whole machine.
    fn chip_span(&self) -> usize {
        self.level_of_kind(LevelKind::Socket)
            .or_else(|| self.level_of_kind(LevelKind::Numa))
            .map_or_else(|| self.num_cpus(), |l| self.spans[l])
    }

    pub fn num_chips(&self) -> usize {
        self.num_cpus() / self.chip_span()
    }

    pub fn cores_per_chip(&self) -> usize {
        self.chip_span() / self.core_span()
    }

    pub fn threads_per_core(&self) -> usize {
        self.core_span()
    }

    /// Widest core in the machine. The tree is regular, so this equals
    /// [`Topology::threads_per_core`]; model selection keys off it.
    pub fn max_smt_width(&self) -> usize {
        self.core_span()
    }

    pub fn num_cores(&self) -> usize {
        self.num_cpus() / self.core_span()
    }

    /// Total logical CPUs.
    pub fn num_cpus(&self) -> usize {
        *self.spans.last().expect("a topology has at least the machine root")
    }

    /// All CPU ids in the machine.
    pub fn cpus(&self) -> impl Iterator<Item = CpuId> {
        (0..self.num_cpus()).map(CpuId)
    }

    /// All core ids in the machine.
    pub fn cores(&self) -> impl Iterator<Item = CoreId> {
        (0..self.num_cores()).map(CoreId)
    }

    /// The core a CPU belongs to.
    pub fn core_of(&self, cpu: CpuId) -> CoreId {
        assert!(cpu.0 < self.num_cpus(), "cpu {cpu} out of range");
        CoreId(cpu.0 / self.core_span())
    }

    /// The chip a CPU belongs to.
    pub fn chip_of(&self, cpu: CpuId) -> ChipId {
        assert!(cpu.0 < self.num_cpus(), "cpu {cpu} out of range");
        ChipId(cpu.0 / self.chip_span())
    }

    /// Position of a CPU within its core (the hardware context slot).
    pub fn context_of(&self, cpu: CpuId) -> ContextId {
        assert!(cpu.0 < self.num_cpus(), "cpu {cpu} out of range");
        ContextId(cpu.0 % self.core_span())
    }

    /// The CPUs of a core, in context order.
    pub fn cpus_of_core(&self, core: CoreId) -> Vec<CpuId> {
        assert!(core.0 < self.num_cores(), "core out of range");
        let base = core.0 * self.core_span();
        (base..base + self.core_span()).map(CpuId).collect()
    }

    /// The first SMT sibling of a CPU, if its core has one.
    pub fn sibling_of(&self, cpu: CpuId) -> Option<CpuId> {
        if self.core_span() < 2 {
            return None;
        }
        let core = self.core_of(cpu);
        self.cpus_of_core(core).into_iter().find(|&c| c != cpu)
    }

    /// All CPUs sharing the given domain with `cpu` (including `cpu`).
    /// Every level is a contiguous range: O(domain size) to materialise,
    /// O(1) to locate.
    pub fn domain_cpus(&self, cpu: CpuId, level: DomainLevel) -> Vec<CpuId> {
        assert!(cpu.0 < self.num_cpus(), "cpu {cpu} out of range");
        let span = match level {
            DomainLevel::Context => 1,
            DomainLevel::Core => self.core_span(),
            DomainLevel::Chip => self.chip_span(),
            DomainLevel::System => self.num_cpus(),
        };
        let base = (cpu.0 / span) * span;
        (base..base + span).map(CpuId).collect()
    }
}

impl Default for Topology {
    fn default() -> Self {
        Topology::openpower_710()
    }
}

// ----------------------------------------------------------------------
// Serde: the canonical spec string, plus costs/distances when they differ
// from the defaults of the parsed shape.
// ----------------------------------------------------------------------

impl serde::Serialize for Topology {
    fn to_value(&self) -> Value {
        let parsed = Topology::parse_spec(&self.render_spec()).expect("render_spec round-trips");
        if parsed == *self {
            return Value::Str(self.render_spec());
        }
        Value::Map(vec![
            ("spec".into(), Value::Str(self.render_spec())),
            (
                "costs".into(),
                Value::Seq(self.levels.iter().map(|l| Value::UInt(u64::from(l.cost))).collect()),
            ),
            (
                "distances".into(),
                Value::Seq(
                    self.numa_distances
                        .iter()
                        .map(|row| {
                            Value::Seq(row.iter().map(|&d| Value::UInt(u64::from(d))).collect())
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl serde::Deserialize for Topology {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let bad = |e: TopologyError| serde::Error::custom(e.to_string());
        if let Some(spec) = v.as_str() {
            return Topology::parse(spec).map_err(bad);
        }
        let map = v.as_map().ok_or_else(|| serde::Error::expected("topology spec", v))?;
        let field = |name: &str| map.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        // Legacy triple form: {chips, cores_per_chip, threads_per_core}.
        if let (Some(chips), Some(cpc), Some(tpc)) =
            (field("chips"), field("cores_per_chip"), field("threads_per_core"))
        {
            let dim = |v: &Value| {
                v.as_u64()
                    .map(|n| n as usize)
                    .ok_or_else(|| serde::Error::expected("integer dimension", v))
            };
            return Topology::try_new(dim(chips)?, dim(cpc)?, dim(tpc)?).map_err(bad);
        }
        let spec = field("spec")
            .and_then(|v| v.as_str())
            .ok_or_else(|| serde::Error::custom("topology map needs a `spec` string"))?;
        let mut t = Topology::parse(spec).map_err(bad)?;
        if let Some(costs) = field("costs").and_then(|v| v.as_seq()) {
            let costs: Vec<u32> = costs
                .iter()
                .map(|c| {
                    c.as_u64()
                        .map(|n| n as u32)
                        .ok_or_else(|| serde::Error::expected("integer cost", c))
                })
                .collect::<Result<_, _>>()?;
            t = t.with_level_costs(&costs).map_err(bad)?;
        }
        if let Some(rows) = field("distances").and_then(|v| v.as_seq()) {
            let m: Vec<Vec<u32>> = rows
                .iter()
                .map(|row| {
                    row.as_seq()
                        .ok_or_else(|| serde::Error::expected("distance row", row))?
                        .iter()
                        .map(|d| {
                            d.as_u64()
                                .map(|n| n as u32)
                                .ok_or_else(|| serde::Error::expected("integer distance", d))
                        })
                        .collect()
                })
                .collect::<Result<_, _>>()?;
            t = t.with_numa_distances(m).map_err(bad)?;
        }
        Ok(t)
    }
}

// ----------------------------------------------------------------------
// Snapshot: full-fidelity image of the tree, so checkpoints restore
// custom costs and distance matrices exactly.
// ----------------------------------------------------------------------

const TOPOLOGY_SNAPSHOT_VERSION: u8 = 1;

impl Snapshot for Topology {
    fn snapshot(&self, w: &mut SnapshotWriter) {
        w.put_u8(TOPOLOGY_SNAPSHOT_VERSION);
        w.put_len(self.levels.len());
        for level in &self.levels {
            let (tag, custom) = match level.kind {
                LevelKind::Core => (0u8, 0u8),
                LevelKind::Socket => (1, 0),
                LevelKind::Numa => (2, 0),
                LevelKind::Machine => (3, 0),
                LevelKind::Custom(j) => (4, j),
            };
            w.put_u8(tag);
            w.put_u8(custom);
            w.put_u64(level.width as u64);
            w.put_u32(level.cost);
        }
        w.put_len(self.numa_distances.len());
        for row in &self.numa_distances {
            for &d in row {
                w.put_u32(d);
            }
        }
    }

    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        if r.get_u8()? != TOPOLOGY_SNAPSHOT_VERSION {
            return Err(SnapshotError::Malformed("unsupported Topology snapshot version"));
        }
        let n_levels = r.get_len()?;
        let mut levels = Vec::with_capacity(n_levels.min(MAX_LEVELS));
        for _ in 0..n_levels {
            let tag = r.get_u8()?;
            let custom = r.get_u8()?;
            let kind = match tag {
                0 => LevelKind::Core,
                1 => LevelKind::Socket,
                2 => LevelKind::Numa,
                3 => LevelKind::Machine,
                4 => LevelKind::Custom(custom),
                _ => return Err(SnapshotError::Malformed("bad LevelKind tag")),
            };
            let width = r.get_u64()? as usize;
            let cost = r.get_u32()?;
            levels.push(Level { kind, width, cost });
        }
        let t = Topology::try_from_levels(levels)
            .map_err(|_| SnapshotError::Malformed("invalid topology tree"))?;
        let n = r.get_len()?;
        let mut m = Vec::with_capacity(n.min(MAX_CPUS));
        for _ in 0..n {
            let mut row = Vec::with_capacity(n);
            for _ in 0..n {
                row.push(r.get_u32()?);
            }
            m.push(row);
        }
        t.with_numa_distances(m).map_err(|_| SnapshotError::Malformed("invalid NUMA distances"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn openpower_710_shape() {
        let t = Topology::openpower_710();
        assert_eq!(t.num_chips(), 1);
        assert_eq!(t.num_cores(), 2);
        assert_eq!(t.num_cpus(), 4);
    }

    #[test]
    fn cpu_to_core_mapping() {
        let t = Topology::openpower_710();
        assert_eq!(t.core_of(CpuId(0)), CoreId(0));
        assert_eq!(t.core_of(CpuId(1)), CoreId(0));
        assert_eq!(t.core_of(CpuId(2)), CoreId(1));
        assert_eq!(t.core_of(CpuId(3)), CoreId(1));
    }

    #[test]
    fn context_slots() {
        let t = Topology::openpower_710();
        assert_eq!(t.context_of(CpuId(0)), ContextId(0));
        assert_eq!(t.context_of(CpuId(1)), ContextId(1));
        assert_eq!(t.context_of(CpuId(2)), ContextId(0));
    }

    #[test]
    fn siblings() {
        let t = Topology::openpower_710();
        assert_eq!(t.sibling_of(CpuId(0)), Some(CpuId(1)));
        assert_eq!(t.sibling_of(CpuId(1)), Some(CpuId(0)));
        assert_eq!(t.sibling_of(CpuId(3)), Some(CpuId(2)));
        assert_eq!(Topology::single_core_st().sibling_of(CpuId(0)), None);
    }

    #[test]
    fn core_cpu_lists() {
        let t = Topology::openpower_710();
        assert_eq!(t.cpus_of_core(CoreId(0)), vec![CpuId(0), CpuId(1)]);
        assert_eq!(t.cpus_of_core(CoreId(1)), vec![CpuId(2), CpuId(3)]);
    }

    #[test]
    fn domain_membership() {
        let t = Topology::openpower_710();
        assert_eq!(t.domain_cpus(CpuId(0), DomainLevel::Context), vec![CpuId(0)]);
        assert_eq!(t.domain_cpus(CpuId(0), DomainLevel::Core), vec![CpuId(0), CpuId(1)]);
        assert_eq!(t.domain_cpus(CpuId(0), DomainLevel::Chip).len(), 4);
        assert_eq!(t.domain_cpus(CpuId(3), DomainLevel::System).len(), 4);
    }

    #[test]
    fn multi_chip_topology() {
        let t = Topology::new(2, 2, 2);
        assert_eq!(t.num_cpus(), 8);
        assert_eq!(t.chip_of(CpuId(3)), ChipId(0));
        assert_eq!(t.chip_of(CpuId(4)), ChipId(1));
        assert_eq!(t.domain_cpus(CpuId(5), DomainLevel::Chip).len(), 4);
        assert_eq!(t.domain_cpus(CpuId(5), DomainLevel::System).len(), 8);
    }

    #[test]
    fn wide_smt_is_a_valid_shape_now() {
        // The old constructor panicked here ("at most 2-way SMT"); wide
        // cores are legal and flagged for the analytic perf model.
        let t = Topology::new(1, 1, 4);
        assert_eq!(t.num_cpus(), 4);
        assert_eq!(t.max_smt_width(), 4);
        assert_eq!(t.cpus_of_core(CoreId(0)).len(), 4);
        assert_eq!(t.sibling_of(CpuId(2)), Some(CpuId(0)));
    }

    #[test]
    fn zero_dimension_is_a_typed_error() {
        assert_eq!(Topology::try_new(1, 0, 2), Err(TopologyError::ZeroWidth));
        assert_eq!(Topology::try_new(0, 1, 1), Err(TopologyError::ZeroWidth));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_cpu() {
        Topology::openpower_710().core_of(CpuId(4));
    }

    #[test]
    fn spec_parses_the_readme_example() {
        let t = Topology::parse("2x2x2c2t").unwrap();
        assert_eq!(t.num_cpus(), 16);
        assert_eq!(t.num_levels(), 4);
        assert_eq!(t.level(0).kind, LevelKind::Core);
        assert_eq!(t.level(1).kind, LevelKind::Socket);
        assert_eq!(t.level(2).kind, LevelKind::Numa);
        assert_eq!(t.level(3).kind, LevelKind::Machine);
        assert_eq!(t.numa_count(), 2);
        assert_eq!(t.threads_per_core(), 2);
    }

    #[test]
    fn spec_openpower_equals_constructor() {
        assert_eq!(Topology::parse("1s2c2t").unwrap(), Topology::openpower_710());
        assert_eq!(Topology::parse("openpower-710").unwrap(), Topology::openpower_710());
    }

    #[test]
    fn spec_skipping_a_level_compresses_the_tree() {
        // 2 NUMA nodes directly holding 2 dual-thread cores: no socket
        // level at all, 3 grouping levels.
        let t = Topology::parse("2n2c2t").unwrap();
        assert_eq!(t.num_cpus(), 8);
        assert_eq!(t.num_levels(), 3);
        assert_eq!(t.level(1).kind, LevelKind::Numa);
        assert_eq!(t.numa_count(), 2);
        assert_eq!(t.numa_node_of(CpuId(3)), 0);
        assert_eq!(t.numa_node_of(CpuId(4)), 1);
        // Back-compat chip view falls back to the NUMA node.
        assert_eq!(t.num_chips(), 2);
    }

    #[test]
    fn spec_rejects_garbage_and_bad_nesting() {
        assert!(matches!(Topology::parse("bogus"), Err(TopologyError::Spec(_))));
        assert!(matches!(Topology::parse(""), Err(TopologyError::Spec(_))));
        assert!(matches!(Topology::parse("0c2t"), Err(TopologyError::ZeroWidth)));
        // A NUMA node inside a core is out of hierarchy order.
        assert!(matches!(Topology::parse("2c2n2t"), Err(TopologyError::Spec(_))));
    }

    #[test]
    fn render_round_trips() {
        for spec in ["1s2c2t", "2s2c2t", "2n2c2t", "1c4t", "2x2x2c2t", "2x2n2c2t"] {
            let t = Topology::parse(spec).unwrap();
            let rendered = t.render_spec();
            assert_eq!(Topology::parse(&rendered).unwrap(), t, "spec `{spec}` → `{rendered}`");
        }
    }

    #[test]
    fn migration_cost_grows_toward_the_root() {
        let t = Topology::parse("2s2c2t").unwrap();
        assert_eq!(t.migration_cost(CpuId(0), CpuId(0)), 0);
        let smt = t.migration_cost(CpuId(0), CpuId(1));
        let cross_core = t.migration_cost(CpuId(0), CpuId(2));
        let cross_socket = t.migration_cost(CpuId(0), CpuId(4));
        assert!(0 < smt && smt <= cross_core && cross_core <= cross_socket);
    }

    #[test]
    fn numa_distances_default_and_override() {
        let t = Topology::parse("2n2c2t").unwrap();
        assert_eq!(t.numa_distance(0, 0), 10);
        assert_eq!(t.numa_distance(0, 1), 20);
        let t = t.with_numa_distances(vec![vec![10, 40], vec![40, 10]]).unwrap();
        assert_eq!(t.numa_distance(1, 0), 40);
        assert!(Topology::parse("2n2c2t")
            .unwrap()
            .with_numa_distances(vec![vec![10]])
            .is_err());
        assert!(Topology::parse("2n2c2t")
            .unwrap()
            .with_numa_distances(vec![vec![10, 5], vec![5, 10]])
            .is_err());
    }

    #[test]
    fn non_monotone_costs_rejected() {
        let err = Topology::openpower_710().with_level_costs(&[10, 3, 50]);
        assert_eq!(err, Err(TopologyError::NonMonotoneCost { level: 1 }));
    }

    #[test]
    fn snapshot_round_trips_full_fidelity() {
        let t = Topology::parse("2n2c2t")
            .unwrap()
            .with_numa_distances(vec![vec![10, 42], vec![42, 10]])
            .unwrap();
        let mut w = SnapshotWriter::new();
        w.put(&t);
        let bytes = w.finish();
        let mut r = SnapshotReader::new(&bytes).unwrap();
        let back: Topology = r.get().unwrap();
        assert_eq!(back, t);
        assert_eq!(back.numa_distance(0, 1), 42);
    }

    #[test]
    fn serde_round_trips() {
        use serde::{Deserialize, Serialize};
        let t = Topology::parse("2s2c2t").unwrap();
        let v = t.to_value();
        assert_eq!(Topology::from_value(&v).unwrap(), t);
        // Custom distances force the long form.
        let t = Topology::parse("2n2c2t")
            .unwrap()
            .with_numa_distances(vec![vec![10, 33], vec![33, 10]])
            .unwrap();
        let back = Topology::from_value(&t.to_value()).unwrap();
        assert_eq!(back, t);
        // Legacy triple maps still load.
        let legacy = Value::Map(vec![
            ("chips".into(), Value::UInt(1)),
            ("cores_per_chip".into(), Value::UInt(2)),
            ("threads_per_core".into(), Value::UInt(2)),
        ]);
        assert_eq!(Topology::from_value(&legacy).unwrap(), Topology::openpower_710());
    }

    #[test]
    fn group_ranges_are_contiguous_and_o1() {
        let t = Topology::parse("2x2x2c2t").unwrap();
        assert_eq!(t.group_range(CpuId(5), 0), 4..6);
        assert_eq!(t.group_range(CpuId(5), 1), 4..8);
        assert_eq!(t.group_range(CpuId(5), 2), 0..8);
        assert_eq!(t.group_range(CpuId(5), 3), 0..16);
        assert_eq!(t.num_groups(0), 8);
        assert_eq!(t.num_groups(3), 1);
    }
}
