//! Processor topology: chips → cores → hardware contexts.
//!
//! Linux sees each hardware context (SMT thread) as one CPU. The paper's
//! evaluation machine is an IBM OpenPower 710 with a single POWER5: one chip,
//! two cores, two contexts per core — four logical CPUs. The scheduler's
//! load balancer works over a three-level domain hierarchy (paper §IV-A):
//! context level, core level, chip level.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a chip in the machine.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct ChipId(pub usize);

/// Global index of a core (across all chips).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct CoreId(pub usize);

/// Index of a context *within its core* (0 or 1 on POWER5).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct ContextId(pub usize);

/// A logical CPU: what the OS schedules on. One per hardware context.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CpuId(pub usize);

impl fmt::Debug for CpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

impl fmt::Display for CpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

/// Levels of the scheduling-domain hierarchy, smallest first.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum DomainLevel {
    /// A single hardware context (one logical CPU).
    Context,
    /// The two sibling contexts of one core.
    Core,
    /// All contexts of one chip.
    Chip,
    /// The whole machine.
    System,
}

impl DomainLevel {
    /// Domain levels from the innermost outwards, as the balancer walks them.
    pub const ASCENDING: [DomainLevel; 4] =
        [DomainLevel::Context, DomainLevel::Core, DomainLevel::Chip, DomainLevel::System];
}

/// Static machine topology.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Topology {
    chips: usize,
    cores_per_chip: usize,
    threads_per_core: usize,
}

impl Topology {
    /// A generic SMP/SMT topology.
    ///
    /// # Panics
    /// If any dimension is zero or `threads_per_core > 2` (the POWER5 decode
    /// arbitration model is defined for 2-way SMT).
    pub fn new(chips: usize, cores_per_chip: usize, threads_per_core: usize) -> Self {
        assert!(chips > 0 && cores_per_chip > 0 && threads_per_core > 0, "empty topology");
        assert!(threads_per_core <= 2, "POWER5 model supports at most 2-way SMT");
        Topology { chips, cores_per_chip, threads_per_core }
    }

    /// The paper's evaluation machine: one POWER5 chip, 2 cores × 2 SMT.
    pub fn openpower_710() -> Self {
        Topology::new(1, 2, 2)
    }

    /// A single core in single-thread mode (useful in unit tests).
    pub fn single_core_st() -> Self {
        Topology::new(1, 1, 1)
    }

    pub fn num_chips(&self) -> usize {
        self.chips
    }

    pub fn cores_per_chip(&self) -> usize {
        self.cores_per_chip
    }

    pub fn threads_per_core(&self) -> usize {
        self.threads_per_core
    }

    pub fn num_cores(&self) -> usize {
        self.chips * self.cores_per_chip
    }

    /// Total logical CPUs.
    pub fn num_cpus(&self) -> usize {
        self.num_cores() * self.threads_per_core
    }

    /// All CPU ids in the machine.
    pub fn cpus(&self) -> impl Iterator<Item = CpuId> {
        (0..self.num_cpus()).map(CpuId)
    }

    /// All core ids in the machine.
    pub fn cores(&self) -> impl Iterator<Item = CoreId> {
        (0..self.num_cores()).map(CoreId)
    }

    /// The core a CPU belongs to.
    pub fn core_of(&self, cpu: CpuId) -> CoreId {
        assert!(cpu.0 < self.num_cpus(), "cpu {cpu} out of range");
        CoreId(cpu.0 / self.threads_per_core)
    }

    /// The chip a CPU belongs to.
    pub fn chip_of(&self, cpu: CpuId) -> ChipId {
        ChipId(self.core_of(cpu).0 / self.cores_per_chip)
    }

    /// Position of a CPU within its core (the hardware context slot).
    pub fn context_of(&self, cpu: CpuId) -> ContextId {
        assert!(cpu.0 < self.num_cpus(), "cpu {cpu} out of range");
        ContextId(cpu.0 % self.threads_per_core)
    }

    /// The CPUs of a core, in context order.
    pub fn cpus_of_core(&self, core: CoreId) -> Vec<CpuId> {
        assert!(core.0 < self.num_cores(), "core out of range");
        let base = core.0 * self.threads_per_core;
        (base..base + self.threads_per_core).map(CpuId).collect()
    }

    /// The SMT sibling of a CPU, if its core has one.
    pub fn sibling_of(&self, cpu: CpuId) -> Option<CpuId> {
        if self.threads_per_core < 2 {
            return None;
        }
        let core = self.core_of(cpu);
        self.cpus_of_core(core).into_iter().find(|&c| c != cpu)
    }

    /// All CPUs sharing the given domain with `cpu` (including `cpu`).
    pub fn domain_cpus(&self, cpu: CpuId, level: DomainLevel) -> Vec<CpuId> {
        match level {
            DomainLevel::Context => vec![cpu],
            DomainLevel::Core => self.cpus_of_core(self.core_of(cpu)),
            DomainLevel::Chip => {
                let chip = self.chip_of(cpu);
                self.cpus()
                    .filter(|&c| self.chip_of(c) == chip)
                    .collect()
            }
            DomainLevel::System => self.cpus().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn openpower_710_shape() {
        let t = Topology::openpower_710();
        assert_eq!(t.num_chips(), 1);
        assert_eq!(t.num_cores(), 2);
        assert_eq!(t.num_cpus(), 4);
    }

    #[test]
    fn cpu_to_core_mapping() {
        let t = Topology::openpower_710();
        assert_eq!(t.core_of(CpuId(0)), CoreId(0));
        assert_eq!(t.core_of(CpuId(1)), CoreId(0));
        assert_eq!(t.core_of(CpuId(2)), CoreId(1));
        assert_eq!(t.core_of(CpuId(3)), CoreId(1));
    }

    #[test]
    fn context_slots() {
        let t = Topology::openpower_710();
        assert_eq!(t.context_of(CpuId(0)), ContextId(0));
        assert_eq!(t.context_of(CpuId(1)), ContextId(1));
        assert_eq!(t.context_of(CpuId(2)), ContextId(0));
    }

    #[test]
    fn siblings() {
        let t = Topology::openpower_710();
        assert_eq!(t.sibling_of(CpuId(0)), Some(CpuId(1)));
        assert_eq!(t.sibling_of(CpuId(1)), Some(CpuId(0)));
        assert_eq!(t.sibling_of(CpuId(3)), Some(CpuId(2)));
        assert_eq!(Topology::single_core_st().sibling_of(CpuId(0)), None);
    }

    #[test]
    fn core_cpu_lists() {
        let t = Topology::openpower_710();
        assert_eq!(t.cpus_of_core(CoreId(0)), vec![CpuId(0), CpuId(1)]);
        assert_eq!(t.cpus_of_core(CoreId(1)), vec![CpuId(2), CpuId(3)]);
    }

    #[test]
    fn domain_membership() {
        let t = Topology::openpower_710();
        assert_eq!(t.domain_cpus(CpuId(0), DomainLevel::Context), vec![CpuId(0)]);
        assert_eq!(t.domain_cpus(CpuId(0), DomainLevel::Core), vec![CpuId(0), CpuId(1)]);
        assert_eq!(t.domain_cpus(CpuId(0), DomainLevel::Chip).len(), 4);
        assert_eq!(t.domain_cpus(CpuId(3), DomainLevel::System).len(), 4);
    }

    #[test]
    fn multi_chip_topology() {
        let t = Topology::new(2, 2, 2);
        assert_eq!(t.num_cpus(), 8);
        assert_eq!(t.chip_of(CpuId(3)), ChipId(0));
        assert_eq!(t.chip_of(CpuId(4)), ChipId(1));
        assert_eq!(t.domain_cpus(CpuId(5), DomainLevel::Chip).len(), 4);
        assert_eq!(t.domain_cpus(CpuId(5), DomainLevel::System).len(), 8);
    }

    #[test]
    #[should_panic(expected = "at most 2-way SMT")]
    fn rejects_4way_smt() {
        Topology::new(1, 1, 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_cpu() {
        Topology::openpower_710().core_of(CpuId(4));
    }
}
