//! The stateful chip: per-context hardware priority registers and the
//! software interface for reading and writing them.
//!
//! The kernel's architecture-dependent "Mechanism" component (paper §IV-C)
//! talks to this type: it issues `or`-nops at supervisor privilege to set a
//! context's priority, and reads the registers back. The scheduler core asks
//! the chip for the current [`crate::SpeedFactors`] of each core so the simulation
//! can advance task work at the right rate.

use crate::perf::{CtxLoad, PerfModel, TableModel, TaskPerfTraits};
use crate::priority::{issue_or_nop, HwPriority, PriorityError, PrivilegeLevel};
use crate::topology::{ContextId, CoreId, CpuId, Topology};

/// The software-visible state of one hardware context.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ContextState {
    /// Current hardware thread priority.
    pub priority: HwPriority,
    /// Whether a task is currently dispatched here, and its performance
    /// traits. `None` = context idle (the kernel's idle loop on POWER5
    /// drops the thread priority so the sibling gets the core; we model
    /// idle as ceding all resources).
    pub load: Option<TaskPerfTraits>,
}

impl Default for ContextState {
    fn default() -> Self {
        ContextState { priority: HwPriority::MEDIUM, load: None }
    }
}

impl ContextState {
    fn as_ctx_load(&self) -> CtxLoad {
        match self.load {
            Some(traits) => CtxLoad::Busy { prio: self.priority, traits },
            None => CtxLoad::Idle,
        }
    }
}

/// What an *idle* hardware context does to its busy sibling.
///
/// On the paper's Linux 2.6.24/POWER5 setup the idle loop **spins** on the
/// context at medium priority, still consuming decode slots — the busy
/// sibling does *not* get single-thread speed just because its sibling has
/// nothing to run. (This is precisely why boosting the busy thread's
/// hardware priority pays off even while its partner waits on a barrier.)
/// `Snooze` models an idle loop that drops the thread priority to Very low,
/// ceding the core — kept as an ablation knob.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IdleMode {
    /// Idle context spins at Medium priority (Linux 2.6.24 default).
    Spin,
    /// Idle context cedes the core; the sibling runs at ~ST speed.
    Snooze,
}

/// A simulated machine's worth of POWER5 silicon (one or more chips — the
/// name reflects the paper's single-chip machine, but multi-chip topologies
/// are supported for the cluster-direction experiments).
pub struct Chip {
    topology: Topology,
    contexts: Vec<ContextState>,
    model: Box<dyn PerfModel + Send + Sync>,
    prio_writes: u64,
    idle_mode: IdleMode,
}

impl Chip {
    /// Build a chip with the default performance model for its shape: the
    /// calibrated pairwise table for cores up to 2-way SMT, the analytic
    /// n-way model for wider cores (the table is only defined pairwise).
    pub fn new(topology: Topology) -> Self {
        if topology.max_smt_width() > 2 {
            Chip::with_model(topology, Box::new(crate::perf::AnalyticModel::default()))
        } else {
            Chip::with_model(topology, Box::new(TableModel::default()))
        }
    }

    /// Build a chip with a custom performance model (used by ablations).
    pub fn with_model(topology: Topology, model: Box<dyn PerfModel + Send + Sync>) -> Self {
        let n = topology.num_cpus();
        Chip {
            topology,
            contexts: vec![ContextState::default(); n],
            model,
            prio_writes: 0,
            idle_mode: IdleMode::Spin,
        }
    }

    /// Change the idle-loop model (ablations).
    pub fn set_idle_mode(&mut self, mode: IdleMode) {
        self.idle_mode = mode;
    }

    pub fn idle_mode(&self) -> IdleMode {
        self.idle_mode
    }

    /// How an unloaded context presents to the arbitration model.
    fn idle_ctx_load(&self) -> CtxLoad {
        match self.idle_mode {
            // The spinning idle loop consumes decode slots like a medium-
            // priority compute thread, but its "speed" is meaningless.
            IdleMode::Spin => CtxLoad::Busy {
                prio: HwPriority::MEDIUM,
                traits: TaskPerfTraits::default(),
            },
            IdleMode::Snooze => CtxLoad::Idle,
        }
    }

    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Current state of a context.
    pub fn context(&self, cpu: CpuId) -> ContextState {
        self.contexts[cpu.0]
    }

    /// Read the hardware priority of a context (always permitted; the PPR
    /// register is readable at any privilege).
    pub fn priority_of(&self, cpu: CpuId) -> HwPriority {
        self.contexts[cpu.0].priority
    }

    /// Number of priority writes issued so far (mechanism overhead metric).
    pub fn priority_writes(&self) -> u64 {
        self.prio_writes
    }

    /// Issue an `or X,X,X` nop on `cpu` at the given privilege, requesting
    /// `prio`. Mirrors the real interface: the instruction executes on the
    /// context whose priority changes.
    pub fn set_priority(
        &mut self,
        cpu: CpuId,
        prio: HwPriority,
        level: PrivilegeLevel,
    ) -> Result<(), PriorityError> {
        let effective = issue_or_nop(prio, level)?;
        self.contexts[cpu.0].priority = effective;
        self.prio_writes += 1;
        Ok(())
    }

    /// Hypervisor-only direct register write (used to model thread on/off
    /// and test setup; bypasses the or-nop encoding restriction).
    pub fn set_priority_hypervisor(&mut self, cpu: CpuId, prio: HwPriority) {
        self.contexts[cpu.0].priority = prio;
        self.prio_writes += 1;
    }

    /// Dispatch a task (its perf traits) onto a context, or clear it.
    pub fn set_load(&mut self, cpu: CpuId, load: Option<TaskPerfTraits>) {
        self.contexts[cpu.0].load = load;
    }

    /// Reset a context's priority to the boot default (Medium).
    pub fn reset_priority(&mut self, cpu: CpuId) {
        self.contexts[cpu.0].priority = HwPriority::MEDIUM;
    }

    /// Current speed factors of the contexts of `core`, in context order.
    ///
    /// For single-thread cores the single context runs at ST speed whenever
    /// loaded. On SMT cores an *unloaded* context is presented to the model
    /// according to [`IdleMode`]; an unloaded context's own speed is always
    /// reported as 0.
    pub fn core_speeds(&self, core: CoreId) -> Vec<(CpuId, f64)> {
        let cpus = self.topology.cpus_of_core(core);
        let present = |cpu: &CpuId| -> CtxLoad {
            let st = self.contexts[cpu.0];
            if st.load.is_some() {
                st.as_ctx_load()
            } else {
                self.idle_ctx_load()
            }
        };
        match cpus.as_slice() {
            [only] => {
                let s = self.model.speeds(self.contexts[only.0].as_ctx_load(), CtxLoad::Idle);
                vec![(*only, s.a)]
            }
            [a, b] => {
                let s = self.model.speeds(present(a), present(b));
                let speed_a = if self.contexts[a.0].load.is_some() { s.a } else { 0.0 };
                let speed_b = if self.contexts[b.0].load.is_some() { s.b } else { 0.0 };
                vec![(*a, speed_a), (*b, speed_b)]
            }
            many => {
                // Wide SMT core: ask the model for all contexts at once.
                let loads: Vec<CtxLoad> = many.iter().map(present).collect();
                let speeds = self.model.speeds_many(&loads);
                many.iter()
                    .zip(speeds)
                    .map(|(cpu, s)| {
                        (*cpu, if self.contexts[cpu.0].load.is_some() { s } else { 0.0 })
                    })
                    .collect()
            }
        }
    }

    /// Speed factor of one CPU right now.
    pub fn speed_of(&self, cpu: CpuId) -> f64 {
        let core = self.topology.core_of(cpu);
        self.core_speeds(core)
            .into_iter()
            .find(|(c, _)| *c == cpu)
            .map(|(_, s)| s)
            .expect("cpu belongs to its core")
    }

    /// Speed factors of every CPU, indexed by CPU id.
    pub fn all_speeds(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.topology.num_cpus()];
        for core in self.topology.cores() {
            for (cpu, s) in self.core_speeds(core) {
                out[cpu.0] = s;
            }
        }
        out
    }

    /// The context slot of `cpu` (exposed for diagnostics).
    pub fn context_slot(&self, cpu: CpuId) -> ContextId {
        self.topology.context_of(cpu)
    }
}

impl std::fmt::Debug for Chip {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Chip")
            .field("topology", &self.topology)
            .field("contexts", &self.contexts)
            .field("prio_writes", &self.prio_writes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chip() -> Chip {
        Chip::new(Topology::openpower_710())
    }

    fn p(v: u8) -> HwPriority {
        HwPriority::new(v).unwrap()
    }

    #[test]
    fn boot_state_is_medium_idle() {
        let c = chip();
        for cpu in c.topology().cpus() {
            assert_eq!(c.priority_of(cpu), HwPriority::MEDIUM);
            assert_eq!(c.context(cpu).load, None);
            assert_eq!(c.speed_of(cpu), 0.0, "idle context has no speed");
        }
    }

    #[test]
    fn supervisor_sets_high_priority() {
        let mut c = chip();
        c.set_priority(CpuId(0), p(6), PrivilegeLevel::Supervisor).unwrap();
        assert_eq!(c.priority_of(CpuId(0)), p(6));
        assert_eq!(c.priority_writes(), 1);
    }

    #[test]
    fn user_cannot_set_high_priority() {
        let mut c = chip();
        let err = c.set_priority(CpuId(0), p(6), PrivilegeLevel::User).unwrap_err();
        assert!(matches!(err, PriorityError::InsufficientPrivilege { .. }));
        assert_eq!(c.priority_of(CpuId(0)), HwPriority::MEDIUM, "state unchanged");
    }

    #[test]
    fn speeds_follow_priorities() {
        let mut c = chip();
        let t = TaskPerfTraits::default();
        c.set_load(CpuId(0), Some(t));
        c.set_load(CpuId(1), Some(t));
        // Equal priorities.
        let s0 = c.speed_of(CpuId(0));
        let s1 = c.speed_of(CpuId(1));
        assert!((s0 - 0.8).abs() < 1e-12);
        assert!((s1 - 0.8).abs() < 1e-12);
        // Favour cpu0 by 2.
        c.set_priority(CpuId(0), p(6), PrivilegeLevel::Supervisor).unwrap();
        assert!(c.speed_of(CpuId(0)) > 0.9);
        assert!(c.speed_of(CpuId(1)) < 0.3);
    }

    #[test]
    fn spinning_idle_sibling_keeps_smt_speed() {
        // Default (Spin): the idle loop occupies the sibling context at
        // Medium priority, so the busy thread stays at equal-SMT speed.
        let mut c = chip();
        c.set_load(CpuId(2), Some(TaskPerfTraits::default()));
        assert!((c.speed_of(CpuId(2)) - 0.8).abs() < 1e-12);
        assert_eq!(c.speed_of(CpuId(3)), 0.0);
    }

    #[test]
    fn prioritized_thread_beats_spinning_idle_loop() {
        // A High-priority thread outruns the Medium-priority idle spin —
        // the effect the paper's balancing relies on during wait phases.
        let mut c = chip();
        c.set_load(CpuId(2), Some(TaskPerfTraits::default()));
        c.set_priority(CpuId(2), p(6), PrivilegeLevel::Supervisor).unwrap();
        assert!((c.speed_of(CpuId(2)) - 0.8 * 1.15).abs() < 1e-9);
    }

    #[test]
    fn snoozing_idle_sibling_means_st_speed() {
        let mut c = chip();
        c.set_idle_mode(IdleMode::Snooze);
        assert_eq!(c.idle_mode(), IdleMode::Snooze);
        c.set_load(CpuId(2), Some(TaskPerfTraits::default()));
        assert!((c.speed_of(CpuId(2)) - 1.0).abs() < 1e-12);
        assert_eq!(c.speed_of(CpuId(3)), 0.0);
    }

    #[test]
    fn cores_are_independent() {
        let mut c = chip();
        let t = TaskPerfTraits::default();
        for cpu in c.topology().cpus() {
            c.set_load(cpu, Some(t));
        }
        c.set_priority(CpuId(0), p(6), PrivilegeLevel::Supervisor).unwrap();
        // Core 1 (cpus 2,3) is untouched.
        assert!((c.speed_of(CpuId(2)) - 0.8).abs() < 1e-12);
        assert!((c.speed_of(CpuId(3)) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn all_speeds_indexes_by_cpu() {
        let mut c = chip();
        c.set_load(CpuId(1), Some(TaskPerfTraits::default()));
        let v = c.all_speeds();
        assert_eq!(v.len(), 4);
        assert_eq!(v[0], 0.0, "unloaded context reports no speed");
        assert!((v[1] - 0.8).abs() < 1e-12, "busy thread vs spinning idle");
    }

    #[test]
    fn reset_priority_restores_medium() {
        let mut c = chip();
        c.set_priority(CpuId(0), p(5), PrivilegeLevel::Supervisor).unwrap();
        c.reset_priority(CpuId(0));
        assert_eq!(c.priority_of(CpuId(0)), HwPriority::MEDIUM);
    }

    #[test]
    fn hypervisor_write_can_switch_thread_off() {
        let mut c = chip();
        let t = TaskPerfTraits::default();
        c.set_load(CpuId(0), Some(t));
        c.set_load(CpuId(1), Some(t));
        c.set_priority_hypervisor(CpuId(1), HwPriority::OFF);
        assert!((c.speed_of(CpuId(0)) - 1.0).abs() < 1e-12, "sibling owns the core");
        assert_eq!(c.speed_of(CpuId(1)), 0.0);
    }

    #[test]
    fn single_thread_topology_speeds() {
        let mut c = Chip::new(Topology::single_core_st());
        c.set_load(CpuId(0), Some(TaskPerfTraits::default()));
        assert!((c.speed_of(CpuId(0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn wide_smt_core_uses_the_nway_model() {
        // A 4-way core auto-selects the analytic model; loaded contexts
        // share the core, unloaded ones report 0.
        let mut c = Chip::new(Topology::new(1, 1, 4));
        for cpu in [CpuId(0), CpuId(1), CpuId(2)] {
            c.set_load(cpu, Some(TaskPerfTraits::default()));
        }
        let speeds = c.core_speeds(CoreId(0));
        assert_eq!(speeds.len(), 4);
        assert!(speeds[0].1 > 0.0 && speeds[1].1 > 0.0 && speeds[2].1 > 0.0);
        assert_eq!(speeds[3].1, 0.0);
        // With snoozing (ceding) idle siblings a solo task on the wide
        // core still runs at ST speed; spinning idles would compete for
        // decode slots, exactly as on the 2-way core.
        let mut solo = Chip::new(Topology::new(1, 1, 4));
        solo.set_idle_mode(IdleMode::Snooze);
        solo.set_load(CpuId(1), Some(TaskPerfTraits::default()));
        assert!((solo.speed_of(CpuId(1)) - 1.0).abs() < 1e-9);
    }
}
