//! Decode-slot arbitration between the two SMT contexts of a core
//! (paper §II-B, Table I).
//!
//! For two runnable contexts with *regular* priorities (2–6) and priority
//! difference `d`, the core repeats a window of `R = 2^(d+1)` decode cycles:
//! the lower-priority thread decodes in exactly 1 of them, the
//! higher-priority thread in the remaining `R − 1`. Equal priorities
//! alternate 1:1 (`R = 2`).
//!
//! Two implementations are provided:
//!
//! * [`decode_share`] — the closed-form share each context receives, used by
//!   the performance model;
//! * [`SlotArbiter`] — a cycle-by-cycle reference arbiter, used by tests and
//!   by the Table I experiment to *demonstrate* the ratios rather than
//!   assume them.

use crate::priority::HwPriority;
use serde::{Deserialize, Serialize};

/// The fraction of decode cycles each context receives.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DecodeSplit {
    /// Share of context A, in `[0, 1]`.
    pub a: f64,
    /// Share of context B, in `[0, 1]`.
    pub b: f64,
}

impl DecodeSplit {
    /// Both contexts off.
    pub const NONE: DecodeSplit = DecodeSplit { a: 0.0, b: 0.0 };
}

/// Size of the arbitration window for a given priority difference:
/// `R = 2^(|d|+1)` (paper Table I). Defined for regular priorities only.
#[inline]
pub fn decode_interval(diff: u8) -> u32 {
    2u32 << diff // 2^(diff+1)
}

/// Closed-form decode shares for a pair of context priorities.
///
/// Handles the special levels exactly as the paper describes:
/// * priority 0 — context off, share 0; the sibling effectively runs alone;
/// * priority 7 — single-thread mode (architecturally the sibling is off;
///   we treat a (7, x) pair as (all, none));
/// * priority 1 — background: the thread only receives decode cycles the
///   foreground thread leaves unused. We model that as a fixed small share
///   (`BACKGROUND_SHARE`) when the sibling is a regular foreground thread.
pub fn decode_share(a: HwPriority, b: HwPriority) -> DecodeSplit {
    const FULL: DecodeSplit = DecodeSplit { a: 1.0, b: 0.0 };
    const FULL_B: DecodeSplit = DecodeSplit { a: 0.0, b: 1.0 };

    match (a.value(), b.value()) {
        (0, 0) => DecodeSplit::NONE,
        (0, _) => FULL_B,
        (_, 0) => FULL,
        // ST mode: a 7 wins the whole core. (7,7) is not architecturally
        // meaningful — ST mode implies the sibling is off — so treat it as
        // an even split, the closest defined behaviour.
        (7, 7) => DecodeSplit { a: 0.5, b: 0.5 },
        (7, _) => FULL,
        (_, 7) => FULL_B,
        // Background vs background: even split of leftovers.
        (1, 1) => DecodeSplit { a: 0.5, b: 0.5 },
        (1, _) => DecodeSplit { a: BACKGROUND_SHARE, b: 1.0 - BACKGROUND_SHARE },
        (_, 1) => DecodeSplit { a: 1.0 - BACKGROUND_SHARE, b: BACKGROUND_SHARE },
        (pa, pb) => {
            let d = pa.abs_diff(pb);
            let r = decode_interval(d) as f64;
            if pa >= pb {
                DecodeSplit { a: (r - 1.0) / r, b: 1.0 / r }
            } else {
                DecodeSplit { a: 1.0 / r, b: (r - 1.0) / r }
            }
        }
    }
}

/// Decode share granted to a background (priority 1) thread whose sibling is
/// a regular foreground thread. The architecture gives the background thread
/// only leftover decode slots; on compute-bound foreground work the leftover
/// is tiny. 1/32 matches the most extreme regular ratio (diff 4 → 31:1),
/// which is where the paper places priority 1 relative to the regular range.
pub const BACKGROUND_SHARE: f64 = 1.0 / 32.0;

/// Cycle-accurate reference arbiter.
///
/// Reproduces paper Table I literally: within each window of `R` cycles the
/// lower-priority context decodes exactly once (in the last slot of the
/// window, matching the round-robin hardware counter) and the
/// higher-priority context `R - 1` times. Only defined for two runnable
/// regular-priority contexts — exactly the regime Table I covers.
#[derive(Clone, Debug)]
pub struct SlotArbiter {
    prio_a: HwPriority,
    prio_b: HwPriority,
    cycle: u64,
}

/// Which context decodes in a given cycle.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Slot {
    A,
    B,
}

impl SlotArbiter {
    /// # Panics
    /// If either priority is not regular (2–6); the special levels bypass
    /// windowed arbitration.
    pub fn new(prio_a: HwPriority, prio_b: HwPriority) -> Self {
        assert!(
            prio_a.is_regular() && prio_b.is_regular(),
            "slot arbitration is defined for regular priorities (2-6)"
        );
        SlotArbiter { prio_a, prio_b, cycle: 0 }
    }

    /// Window size `R` for the configured pair.
    pub fn window(&self) -> u32 {
        decode_interval(self.prio_a.diff(self.prio_b))
    }

    /// Advance one decode cycle and report which context got the slot.
    ///
    /// The low-priority thread gets the final slot of each window; with
    /// equal priorities (R = 2) this degenerates to strict alternation.
    pub fn next_slot(&mut self) -> Slot {
        let r = self.window() as u64;
        let pos = self.cycle % r;
        self.cycle += 1;
        if self.prio_a == self.prio_b {
            return if pos == 0 { Slot::A } else { Slot::B };
        }
        let a_is_low = self.prio_a < self.prio_b;
        let low_slot = pos == r - 1;
        if low_slot == a_is_low {
            Slot::A
        } else {
            Slot::B
        }
    }

    /// Run `n` cycles and count slots per context.
    pub fn run(&mut self, n: u64) -> (u64, u64) {
        let mut a = 0;
        let mut b = 0;
        for _ in 0..n {
            match self.next_slot() {
                Slot::A => a += 1,
                Slot::B => b += 1,
            }
        }
        (a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: u8) -> HwPriority {
        HwPriority::new(v).unwrap()
    }

    #[test]
    fn interval_matches_table1() {
        // Table I: diff -> R
        let expect = [(0u8, 2u32), (1, 4), (2, 8), (3, 16), (4, 32), (5, 64)];
        for (d, r) in expect {
            assert_eq!(decode_interval(d), r, "diff {d}");
        }
    }

    #[test]
    fn share_equal_priorities() {
        let s = decode_share(p(4), p(4));
        assert_eq!(s.a, 0.5);
        assert_eq!(s.b, 0.5);
    }

    #[test]
    fn share_matches_table1_ratios() {
        // diff 2 (6 vs 4): 7 of 8 cycles vs 1 of 8.
        let s = decode_share(p(6), p(4));
        assert!((s.a - 7.0 / 8.0).abs() < 1e-12);
        assert!((s.b - 1.0 / 8.0).abs() < 1e-12);

        // diff 4 (6 vs 2): 31 vs 1 of 32 — the paper's worked example.
        let s = decode_share(p(6), p(2));
        assert!((s.a - 31.0 / 32.0).abs() < 1e-12);
        assert!((s.b - 1.0 / 32.0).abs() < 1e-12);
    }

    #[test]
    fn share_is_symmetric() {
        for a in 2..=6u8 {
            for b in 2..=6u8 {
                let s1 = decode_share(p(a), p(b));
                let s2 = decode_share(p(b), p(a));
                assert_eq!(s1.a, s2.b);
                assert_eq!(s1.b, s2.a);
            }
        }
    }

    #[test]
    fn shares_sum_to_one_for_running_pairs() {
        for a in 1..=7u8 {
            for b in 1..=7u8 {
                let s = decode_share(p(a), p(b));
                assert!((s.a + s.b - 1.0).abs() < 1e-12, "prio ({a},{b})");
            }
        }
    }

    #[test]
    fn off_context_yields_whole_core() {
        let s = decode_share(p(0), p(4));
        assert_eq!(s.a, 0.0);
        assert_eq!(s.b, 1.0);
        assert_eq!(decode_share(p(0), p(0)), DecodeSplit::NONE);
    }

    #[test]
    fn st_mode_takes_everything() {
        let s = decode_share(p(7), p(4));
        assert_eq!(s.a, 1.0);
        assert_eq!(s.b, 0.0);
    }

    #[test]
    fn background_gets_leftovers_only() {
        let s = decode_share(p(1), p(4));
        assert!(s.a <= BACKGROUND_SHARE + 1e-12);
        assert!(s.b >= 1.0 - BACKGROUND_SHARE - 1e-12);
    }

    #[test]
    fn arbiter_counts_match_table1_exactly() {
        // Table I rows: (diff, decode cycles A, decode cycles B) per window,
        // with A the higher-priority context.
        let rows = [(0u8, 1u64, 1u64), (1, 3, 1), (2, 7, 1)];
        for (d, high, low) in rows {
            let pa = p(4 + d); // stays within 2..=6 for d <= 2
            let pb = p(4);
            let mut arb = SlotArbiter::new(pa, pb);
            let r = arb.window() as u64;
            assert_eq!(r, high + low, "diff {d} window");
            let (a, b) = arb.run(r);
            assert_eq!(a, high, "diff {d} high count");
            assert_eq!(b, low, "diff {d} low count");
        }
    }

    #[test]
    fn arbiter_long_run_converges_to_share() {
        let mut arb = SlotArbiter::new(p(6), p(4));
        let n = 8 * 1000;
        let (a, b) = arb.run(n);
        assert_eq!(a, 7000);
        assert_eq!(b, 1000);
        let s = decode_share(p(6), p(4));
        assert!((a as f64 / n as f64 - s.a).abs() < 1e-9);
        assert!((b as f64 / n as f64 - s.b).abs() < 1e-9);
    }

    #[test]
    fn arbiter_equal_priorities_alternate() {
        let mut arb = SlotArbiter::new(p(4), p(4));
        let slots: Vec<Slot> = (0..6).map(|_| arb.next_slot()).collect();
        assert_eq!(slots, vec![Slot::A, Slot::B, Slot::A, Slot::B, Slot::A, Slot::B]);
    }

    #[test]
    #[should_panic(expected = "regular priorities")]
    fn arbiter_rejects_special_levels() {
        SlotArbiter::new(p(7), p(4));
    }
}
