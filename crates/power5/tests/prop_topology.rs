//! Property tests for the scheduling-domain tree (DESIGN.md §16): the
//! structural invariants every consumer leans on — contiguous partitions
//! that refine outward, span-consistent domain materialisation, migration
//! costs monotone toward the root, and a spec grammar whose canonical
//! rendering round-trips.

use power5::{CpuId, DomainLevel, Topology};
use proptest::prelude::*;

/// Random spec strings covering the grammar: untagged tokens, tagged
/// hierarchy positions, and the `x` separator. Every generated spec is
/// valid by construction (counts >= 1, tags strictly ascend outward).
fn arb_spec() -> impl Strategy<Value = String> {
    let untagged = proptest::collection::vec(1usize..=4, 1..=5).prop_map(|widths| {
        widths.iter().map(|w| w.to_string()).collect::<Vec<_>>().join("x")
    });
    let tagged = (1usize..=4, 1usize..=4, 1usize..=3, 1usize..=3, 0u8..16).prop_map(
        |(t, c, s, n, mask)| {
            // Each bit drops one tagged token; keep at least one.
            let mut parts = Vec::new();
            if mask & 1 == 0 {
                parts.push(format!("{n}n"));
            }
            if mask & 2 == 0 {
                parts.push(format!("{s}s"));
            }
            if mask & 4 == 0 {
                parts.push(format!("{c}c"));
            }
            if mask & 8 == 0 {
                parts.push(format!("{t}t"));
            }
            if parts.is_empty() {
                parts.push(format!("{c}c"));
            }
            parts.concat()
        },
    );
    prop_oneof![untagged, tagged]
}

fn arb_topology() -> impl Strategy<Value = Topology> {
    arb_spec().prop_map(|spec| {
        Topology::parse(&spec).unwrap_or_else(|e| panic!("generated spec `{spec}`: {e}"))
    })
}

proptest! {
    /// Every level partitions the CPU set: each CPU lies in exactly one
    /// contiguous group, and the groups tile `0..num_cpus` exactly.
    #[test]
    fn levels_partition_the_cpus(topo in arb_topology()) {
        let n = topo.num_cpus();
        for l in 0..topo.num_levels() {
            let span = topo.span(l);
            prop_assert_eq!(n % span, 0, "level {} span {} divides {}", l, span, n);
            let mut covered = 0usize;
            for g in 0..topo.num_groups(l) {
                let r = topo.group_range(CpuId(g * span), l);
                prop_assert_eq!(r.start, g * span);
                prop_assert_eq!(r.len(), span);
                covered += r.len();
                for cpu in r.clone() {
                    prop_assert_eq!(topo.group_range(CpuId(cpu), l), r.clone());
                }
            }
            prop_assert_eq!(covered, n, "level {} tiles the machine", l);
        }
    }

    /// Domains refine outward: a CPU's group at level `l` is contained in
    /// its group at level `l + 1`, and the machine root spans everything.
    #[test]
    fn domains_refine_outward(topo in arb_topology()) {
        let n = topo.num_cpus();
        for cpu in (0..n).map(CpuId) {
            for l in 0..topo.num_levels() - 1 {
                let inner = topo.group_range(cpu, l);
                let outer = topo.group_range(cpu, l + 1);
                prop_assert!(
                    outer.start <= inner.start && inner.end <= outer.end,
                    "cpu {cpu}: level {l} {inner:?} not inside level {} {outer:?}",
                    l + 1
                );
            }
            let root = topo.group_range(cpu, topo.num_levels() - 1);
            prop_assert_eq!(root, 0..n);
        }
    }

    /// `domain_cpus` materialises exactly the tree span of the matching
    /// level: contiguous, containing the CPU, sized by the classic
    /// span accessors.
    #[test]
    fn domain_cpus_is_the_tree_span(topo in arb_topology()) {
        let n = topo.num_cpus();
        for cpu in (0..n).map(CpuId) {
            for (level, want_span) in [
                (DomainLevel::Context, 1),
                (DomainLevel::Core, topo.max_smt_width()),
                (DomainLevel::Chip, topo.num_cpus() / topo.num_chips()),
                (DomainLevel::System, n),
            ] {
                let cpus = topo.domain_cpus(cpu, level);
                prop_assert_eq!(cpus.len(), want_span, "{level:?} span");
                prop_assert!(cpus.contains(&cpu), "{level:?} contains the cpu");
                for w in cpus.windows(2) {
                    prop_assert_eq!(w[1].0, w[0].0 + 1, "{level:?} is contiguous");
                }
            }
        }
    }

    /// Migration cost is the innermost containing level's cost: zero on
    /// the diagonal, symmetric, and monotone — CPUs sharing an inner
    /// domain are never more expensive to migrate between than CPUs that
    /// only meet further out.
    #[test]
    fn migration_cost_is_monotone_toward_the_root(topo in arb_topology()) {
        let n = topo.num_cpus();
        for a in (0..n).map(CpuId) {
            prop_assert_eq!(topo.migration_cost(a, a), 0);
            for b in (0..n).map(CpuId) {
                let cost = topo.migration_cost(a, b);
                prop_assert_eq!(cost, topo.migration_cost(b, a), "symmetric");
                if a == b {
                    continue;
                }
                // The cost equals the cost of the innermost shared level.
                let l = (0..topo.num_levels())
                    .find(|&l| topo.group_range(a, l).contains(&b.0))
                    .expect("the machine root contains every CPU");
                prop_assert_eq!(cost, topo.level(l).cost);
                // Any pair sharing a strictly inner level costs no more.
                for (inner_l, level) in topo.levels().iter().enumerate() {
                    if inner_l <= l {
                        prop_assert!(level.cost <= cost, "costs monotone toward the root");
                    }
                }
            }
        }
    }

    /// The canonical rendering reproduces the tree exactly:
    /// `parse(render_spec()) == topo`, and rendering is a fixed point.
    #[test]
    fn spec_grammar_round_trips(topo in arb_topology()) {
        let spec = topo.render_spec();
        let reparsed = Topology::parse(&spec)
            .unwrap_or_else(|e| panic!("render_spec `{spec}` does not parse: {e}"));
        prop_assert_eq!(&reparsed, &topo, "parse(render_spec()) reproduces the tree");
        prop_assert_eq!(reparsed.render_spec(), spec, "rendering is a fixed point");
    }

    /// The NUMA view is consistent with the tree: nodes tile the machine,
    /// every CPU maps into range, and distances keep the SLIT contract
    /// (symmetric, local minimal).
    #[test]
    fn numa_view_is_consistent(topo in arb_topology()) {
        let n = topo.num_cpus();
        prop_assert_eq!(topo.numa_count() * topo.numa_span(), n);
        for cpu in (0..n).map(CpuId) {
            prop_assert!(topo.numa_node_of(cpu) < topo.numa_count());
        }
        for i in 0..topo.numa_count() {
            for j in 0..topo.numa_count() {
                prop_assert_eq!(topo.numa_distance(i, j), topo.numa_distance(j, i));
                prop_assert!(topo.numa_distance(i, i) <= topo.numa_distance(i, j));
            }
        }
    }
}
