//! Property tests for the POWER5 model: decode arbitration and the SMT
//! performance model.

use power5::decode::{decode_share, SlotArbiter};
use power5::{AnalyticModel, CtxLoad, HwPriority, PerfModel, TableModel, TaskPerfTraits};
use proptest::prelude::*;

fn prio(v: u8) -> HwPriority {
    HwPriority::new(v).unwrap()
}

fn busy(v: u8) -> CtxLoad {
    CtxLoad::Busy { prio: prio(v), traits: TaskPerfTraits::default() }
}

proptest! {
    /// Decode shares of two live contexts always sum to 1.
    #[test]
    fn shares_partition_the_core(a in 1u8..=7, b in 1u8..=7) {
        let s = decode_share(prio(a), prio(b));
        prop_assert!((s.a + s.b - 1.0).abs() < 1e-12);
        prop_assert!(s.a >= 0.0 && s.b >= 0.0);
    }

    /// The slot arbiter converges to the closed-form share for any regular
    /// pair and any horizon that is a multiple of the window.
    #[test]
    fn arbiter_matches_closed_form(a in 2u8..=6, b in 2u8..=6, windows in 1u64..50) {
        let mut arb = SlotArbiter::new(prio(a), prio(b));
        let r = arb.window() as u64;
        let n = r * windows;
        let (ca, cb) = arb.run(n);
        let share = decode_share(prio(a), prio(b));
        prop_assert!((ca as f64 / n as f64 - share.a).abs() < 1e-12);
        prop_assert!((cb as f64 / n as f64 - share.b).abs() < 1e-12);
    }

    /// Raising one thread's priority never slows it down and never speeds
    /// up its sibling (table model, default traits).
    #[test]
    fn priority_is_monotone(base in 2u8..=5, other in 2u8..=6) {
        let m = TableModel::default();
        let lo = m.speeds(busy(base), busy(other));
        let hi = m.speeds(busy(base + 1), busy(other));
        prop_assert!(hi.a >= lo.a - 1e-12, "own speed non-decreasing");
        prop_assert!(hi.b <= lo.b + 1e-12, "sibling speed non-increasing");
    }

    /// Aggregate throughput stays within physical bounds: no SMT pair can
    /// beat two dedicated cores, and a live pair always makes progress.
    #[test]
    fn aggregate_throughput_bounded(a in 2u8..=6, b in 2u8..=6) {
        for speeds in [
            TableModel::default().speeds(busy(a), busy(b)),
            AnalyticModel::default().speeds(busy(a), busy(b)),
        ] {
            let total = speeds.a + speeds.b;
            prop_assert!(total > 0.5, "pair makes progress: {total}");
            prop_assert!(total < 2.0, "cannot beat two dedicated cores: {total}");
        }
    }

    /// Sensitivity only ever shrinks the deviation from equal-priority
    /// speed, for both gain and loss sides.
    #[test]
    fn sensitivity_dampens(a in 2u8..=6, b in 2u8..=6, s in 0.0f64..1.0) {
        let m = TableModel::default();
        let full = m.speeds(busy(a), busy(b));
        let damped = m.speeds(
            CtxLoad::Busy { prio: prio(a), traits: TaskPerfTraits::uniform(s) },
            CtxLoad::Busy { prio: prio(b), traits: TaskPerfTraits::uniform(s) },
        );
        let equal = 0.8;
        prop_assert!((damped.a - equal).abs() <= (full.a - equal).abs() + 1e-12);
        prop_assert!((damped.b - equal).abs() <= (full.b - equal).abs() + 1e-12);
    }

    /// The paper's asymmetry claim holds across the regular range: the
    /// victim's relative loss is at least the winner's relative gain.
    #[test]
    fn loss_exceeds_gain(low in 2u8..=5, d in 1u8..=4) {
        let high = (low + d).min(6);
        if high == low { return Ok(()); }
        let m = TableModel::default();
        let s = m.speeds(busy(high), busy(low));
        let gain = s.a / 0.8 - 1.0;
        let loss = 1.0 - s.b / 0.8;
        prop_assert!(loss >= gain, "gain {gain} loss {loss}");
    }

    /// Privilege checking is consistent: anything supervisor may set, the
    /// hypervisor may set; anything user may set, the supervisor may set.
    #[test]
    fn privilege_hierarchy(v in 0u8..=7) {
        use power5::PrivilegeLevel::*;
        let p = prio(v);
        if p.allowed_at(User) {
            prop_assert!(p.allowed_at(Supervisor));
        }
        if p.allowed_at(Supervisor) {
            prop_assert!(p.allowed_at(Hypervisor));
        }
    }

    /// or-nop encodings are a bijection over priorities 1..=7.
    #[test]
    fn or_nop_bijection(v in 1u8..=7) {
        let p = prio(v);
        let reg = p.or_nop_register().expect("1..=7 all have encodings");
        prop_assert_eq!(HwPriority::from_or_nop_register(reg), Some(p));
    }
}
