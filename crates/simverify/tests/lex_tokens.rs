//! Unit tests for the hand-rolled lexer: token boundaries, comment and
//! string classification, `#[cfg(test)]` masking — the machinery that
//! kills the grep-era false-positive class.

use simverify::lex::{lex, test_mask, PreparedFile, TokKind};

fn code_texts(src: &str) -> Vec<String> {
    lex(src).iter().filter(|t| t.is_code()).map(|t| t.text.to_string()).collect()
}

#[test]
fn idents_puncts_and_paths_fuse_correctly() {
    let toks = code_texts("let t = std::time::Instant::now();");
    assert_eq!(toks, ["let", "t", "=", "std", "::", "time", "::", "Instant", "::", "now", "(", ")", ";"]);
}

#[test]
fn line_and_block_comments_are_not_code() {
    let src = "// Instant::now in a comment\n/* and SystemTime in /* a nested */ block */\nfn f() {}\n";
    let toks = code_texts(src);
    assert_eq!(toks, ["fn", "f", "(", ")", "{", "}"]);
    let comments = lex(src).iter().filter(|t| t.kind == TokKind::Comment).count();
    assert_eq!(comments, 2);
}

#[test]
fn doc_comments_are_classified_separately() {
    let src = "/// Uses Instant::now? No.\n//! inner doc\n/** block doc */\nfn f() {}\n";
    let kinds: Vec<_> = lex(src).iter().map(|t| t.kind).collect();
    assert_eq!(kinds[..3], [TokKind::DocComment, TokKind::DocComment, TokKind::DocComment]);
}

#[test]
fn strings_cover_cooked_raw_and_byte_forms() {
    let src = r####"fn f() { let a = "Instant::now"; let b = r#"panic!("x")"#; let c = b"SystemTime"; }"####;
    for t in lex(src) {
        if t.kind == TokKind::Str {
            assert!(t.text.contains("Instant") || t.text.contains("panic") || t.text.contains("SystemTime"));
        }
    }
    // None of the forbidden names survive as identifier tokens.
    let idents: Vec<_> = code_texts(src);
    assert!(!idents.iter().any(|t| t == "Instant" || t == "panic" || t == "SystemTime"), "{idents:?}");
}

#[test]
fn escaped_quotes_do_not_end_strings() {
    let toks = code_texts(r#"let s = "quote \" then Instant::now"; done();"#);
    assert!(!toks.iter().any(|t| t == "Instant"));
    assert!(toks.iter().any(|t| t == "done"));
}

#[test]
fn lifetimes_are_not_char_literals() {
    let toks = lex("fn f<'a>(x: &'a str) -> &'a str { x }");
    let lifetimes = toks.iter().filter(|t| t.kind == TokKind::Lifetime).count();
    assert_eq!(lifetimes, 3);
    assert!(toks.iter().all(|t| t.kind != TokKind::Char));
    // ...while real char literals are.
    let toks = lex("let c = 'x'; let esc = '\\n';");
    assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Char).count(), 2);
}

#[test]
fn line_numbers_survive_multiline_tokens() {
    let src = "/* one\ntwo\nthree */\nfn f() {}\n";
    let f = lex(src).iter().find(|t| t.text == "fn").map(|t| t.line);
    assert_eq!(f, Some(4));
}

#[test]
fn cfg_test_items_are_masked_to_their_closing_brace() {
    let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { bad(); }\n}\nfn also_live() {}\n";
    let toks = lex(src);
    let mask = test_mask(&toks);
    let masked_texts: Vec<_> =
        toks.iter().zip(&mask).filter(|(_, &m)| m).map(|(t, _)| t.text).collect();
    assert!(masked_texts.contains(&"bad"));
    assert!(!masked_texts.contains(&"live"));
    assert!(!masked_texts.contains(&"also_live"));
}

#[test]
fn bare_test_attr_and_stacked_attrs_are_masked() {
    let src = "#[test]\n#[ignore]\nfn t() { bad(); }\nfn live() {}\n";
    let toks = lex(src);
    let mask = test_mask(&toks);
    let masked: Vec<_> = toks.iter().zip(&mask).filter(|(_, &m)| m).map(|(t, _)| t.text).collect();
    assert!(masked.contains(&"bad") && masked.contains(&"ignore"));
    assert!(!masked.contains(&"live"));
}

#[test]
fn cfg_not_test_is_shipping_code() {
    let src = "#[cfg(not(test))]\nfn ship() { real(); }\n";
    let toks = lex(src);
    let mask = test_mask(&toks);
    assert!(mask.iter().all(|&m| !m), "cfg(not(test)) must not be masked");
}

#[test]
fn prepared_file_comment_near_finds_markers_in_window() {
    let src = "// PURITY-ROOT: entry\n\n\nfn entry() {}\n";
    let f = PreparedFile::new("crates/x/src/lib.rs", src);
    assert!(f.comment_near(4, 3, "PURITY-ROOT"));
    assert!(!f.comment_near(4, 2, "PURITY-ROOT"), "outside the window");
}
