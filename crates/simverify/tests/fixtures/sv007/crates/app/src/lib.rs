// PURITY-ROOT: fixture entry
pub fn entry() -> u64 {
    let mut rng = thread_rng();
    rng.next_u64()
}

pub fn unreached_ok() -> u64 {
    let _ = OsRng;
    0
}
