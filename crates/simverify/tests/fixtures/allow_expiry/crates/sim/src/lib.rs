// PURITY-ROOT: fixture entry
pub fn entry(seed: u64) -> u64 {
    let t = std::time::Instant::now();
    seed.wrapping_add(t.elapsed().as_nanos() as u64)
}
