// PURITY-ROOT: fixture entry
pub fn entry(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

// PURITY-ROOT: deterministic twin
pub fn entry_ok(xs: &mut [u64]) {
    xs.sort_by(|a, b| a.cmp(b));
}
