// PURITY-ROOT: fixture entry
pub fn entry(path: &str) -> usize {
    std::fs::read_to_string(path).map(|s| s.len()).unwrap_or(0)
}

// PURITY-ROOT: deterministic twin
pub fn entry_ok(config: &str) -> usize {
    config.len()
}
