// PURITY-ROOT: fixture entry
pub fn entry(keys: &[u64]) -> usize {
    let mut m = std::collections::HashMap::new();
    for k in keys {
        m.insert(*k, ());
    }
    m.len()
}

// PURITY-ROOT: deterministic twin
pub fn entry_ok(keys: &[u64]) -> usize {
    let mut m = std::collections::BTreeMap::new();
    for k in keys {
        m.insert(*k, ());
    }
    m.len()
}
