// PURITY-ROOT: fixture entry, two module hops above the violation
pub fn entry(seed: u64) -> u64 {
    seed ^ helper_b()
}
