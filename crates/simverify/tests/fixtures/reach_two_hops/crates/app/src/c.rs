pub fn helper_c() -> u64 {
    std::time::Instant::now().elapsed().as_nanos() as u64
}
