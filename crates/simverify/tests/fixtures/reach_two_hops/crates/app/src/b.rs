pub fn helper_b() -> u64 {
    helper_c()
}
