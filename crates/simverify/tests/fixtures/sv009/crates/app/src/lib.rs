// PURITY-ROOT: fixture entry
pub fn entry() -> u64 {
    let m = std::sync::Mutex::new(7u64);
    let v = *m.lock().unwrap();
    v
}

pub fn unreached_ok() -> u64 {
    static mut COUNTER: u64 = 0;
    unsafe { COUNTER }
}
