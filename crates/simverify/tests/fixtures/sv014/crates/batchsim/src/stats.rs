// PURITY-ROOT: fixture entry
pub fn entry(records: &[f64]) -> usize {
    let mut per_job = Vec::new();
    for r in records {
        per_job.push(*r);
    }
    per_job.len()
}

// PURITY-ROOT: streaming twin
pub fn entry_ok(records: &[f64]) -> f64 {
    let mut sum = 0.0;
    for r in records {
        sum += *r;
    }
    sum
}

fn unreached(records: &[f64]) -> usize {
    let mut v = Vec::new();
    for r in records {
        v.push(*r);
    }
    v.len()
}
