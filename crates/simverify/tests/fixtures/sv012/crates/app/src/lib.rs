// PURITY-ROOT: fixture entry
pub fn entry() -> u64 {
    let (tx, rx) = std::sync::mpsc::channel();
    tx.send(1u64).ok();
    rx.recv().unwrap_or(0)
}

// PURITY-ROOT: deterministic twin
pub fn entry_ok(parts: &[u64]) -> u64 {
    parts.iter().sum()
}
