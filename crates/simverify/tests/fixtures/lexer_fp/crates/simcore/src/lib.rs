//! Doc text mentions Instant::now and SystemTime freely, plus panic!.
// A line comment with Instant::now, HashMap and .unwrap() in it.
/* A block comment: SystemTime::now() /* nested: thread_rng() */ done. */

/// Returns prose that *spells* forbidden names inside string literals.
pub fn describe() -> String {
    let cooked = "Instant::now() and SystemTime::now() in a string";
    let raw = r#"panic!("boom") and .unwrap() in a raw string"#;
    format!("{cooked} {raw}")
}

#[cfg(test)]
mod tests {
    #[test]
    fn wall_clock_in_tests_is_fine() {
        let _ = std::time::Instant::now();
        let _ = std::time::SystemTime::now();
    }
}
