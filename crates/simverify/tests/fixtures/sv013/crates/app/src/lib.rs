pub struct Reader;
pub fn load(bytes: &[u8]) -> usize {
    let _r = Reader::new_unchecked(bytes);
    bytes.len()
}
impl Reader {
    // The definition site is `fn new_unchecked(`, which the `::`-prefixed
    // pattern must skip — only call sites bypass the checksum.
    pub fn new_unchecked(_bytes: &[u8]) -> Reader {
        Reader
    }
    pub fn new(_bytes: &[u8]) -> Reader {
        Reader
    }
}
pub fn load_checked(bytes: &[u8]) -> usize {
    let _r = Reader::new(bytes);
    bytes.len()
}
