//! Unit suite for the call-graph approximation: marker and trait roots,
//! multi-hop reachability, diamond imports, `use ... as` aliases, and the
//! deliberate over-approximation of trait-method dispatch.

use simverify::graph::Graph;
use simverify::lex::PreparedFile;

fn graph_of(files: &[(&str, &str)]) -> (Vec<PreparedFile<'static>>, Graph) {
    let prepared: Vec<PreparedFile<'static>> = files
        .iter()
        .map(|(p, s)| PreparedFile::new(p.to_string(), Box::leak(s.to_string().into_boxed_str())))
        .collect();
    let graph = Graph::build(&prepared);
    (prepared, graph)
}

fn reachable_names(g: &Graph) -> Vec<String> {
    let reach = g.reachable();
    g.fns
        .iter()
        .zip(&reach)
        .filter(|(_, &r)| r)
        .map(|(f, _)| f.name.clone())
        .collect()
}

#[test]
fn marker_comment_declares_a_root() {
    let (_, g) = graph_of(&[(
        "crates/a/src/lib.rs",
        "// PURITY-ROOT: entry point\npub fn entry() { helper(); }\nfn helper() {}\nfn unrelated() {}\n",
    )]);
    let names = reachable_names(&g);
    assert!(names.contains(&"entry".into()) && names.contains(&"helper".into()));
    assert!(!names.contains(&"unrelated".into()));
}

#[test]
fn reachability_crosses_module_and_file_hops() {
    // Two hops across files: entry -> mid -> leaf.
    let (_, g) = graph_of(&[
        ("crates/a/src/lib.rs", "// PURITY-ROOT\npub fn entry() { mid(); }\n"),
        ("crates/a/src/mid.rs", "pub fn mid() { leaf(); }\n"),
        ("crates/b/src/leaf.rs", "pub fn leaf() { let _ = 1; }\nfn island() {}\n"),
    ]);
    let names = reachable_names(&g);
    for n in ["entry", "mid", "leaf"] {
        assert!(names.contains(&n.to_string()), "missing {n}: {names:?}");
    }
    assert!(!names.contains(&"island".into()));
}

#[test]
fn diamond_imports_converge() {
    // entry calls left() and right(); both call shared(). shared must be
    // reachable exactly once in the set (no duplication, no miss).
    let (_, g) = graph_of(&[
        ("crates/a/src/lib.rs", "// PURITY-ROOT\npub fn entry() { left(); right(); }\n"),
        ("crates/a/src/l.rs", "pub fn left() { shared(); }\n"),
        ("crates/a/src/r.rs", "pub fn right() { shared(); }\n"),
        ("crates/a/src/s.rs", "pub fn shared() {}\n"),
    ]);
    let names = reachable_names(&g);
    assert_eq!(names.iter().filter(|n| *n == "shared").count(), 1);
}

#[test]
fn use_as_aliases_expand_to_the_original_name() {
    let (_, g) = graph_of(&[
        (
            "crates/a/src/lib.rs",
            "use crate::real_impl as fast;\n// PURITY-ROOT\npub fn entry() { fast(); }\n",
        ),
        ("crates/a/src/imp.rs", "pub fn real_impl() {}\n"),
    ]);
    let names = reachable_names(&g);
    assert!(names.contains(&"real_impl".into()), "alias edge missing: {names:?}");
}

#[test]
fn trait_impl_methods_of_root_traits_are_roots() {
    let (_, g) = graph_of(&[(
        "crates/p/src/policy.rs",
        "impl Balancer for MyPolicy {\n    fn on_sample(&mut self) { helper(); }\n}\nfn helper() {}\nfn cold() {}\n",
    )]);
    let names = reachable_names(&g);
    assert!(names.contains(&"on_sample".into()) && names.contains(&"helper".into()));
    assert!(!names.contains(&"cold".into()));
}

#[test]
fn trait_method_dispatch_over_approximates() {
    // A reachable `.tick()` call site edges to EVERY fn named tick — both
    // impls are held to the rules, which is the safe direction.
    let (_, g) = graph_of(&[
        ("crates/a/src/lib.rs", "// PURITY-ROOT\npub fn entry(x: &dyn Clock) { x.tick(); }\n"),
        ("crates/a/src/one.rs", "impl Clock for Fast {\n    fn tick(&self) {}\n}\n"),
        ("crates/a/src/two.rs", "impl Clock for Slow {\n    fn tick(&self) {}\n}\n"),
    ]);
    let reach = g.reachable();
    let ticks = g
        .fns
        .iter()
        .zip(&reach)
        .filter(|(f, &r)| f.name == "tick" && r)
        .count();
    assert_eq!(ticks, 2, "both tick impls must be reachable");
}

#[test]
fn marker_on_an_impl_block_roots_every_method() {
    let (_, g) = graph_of(&[(
        "crates/a/src/lib.rs",
        "// PURITY-ROOT: whole block\nimpl Engine {\n    fn step(&mut self) {}\n    fn drain(&mut self) {}\n}\n",
    )]);
    let names = reachable_names(&g);
    assert!(names.contains(&"step".into()) && names.contains(&"drain".into()));
}

#[test]
fn test_code_contributes_no_fns_or_edges() {
    let (_, g) = graph_of(&[(
        "crates/a/src/lib.rs",
        "// PURITY-ROOT\npub fn entry() {}\n#[cfg(test)]\nmod tests {\n    fn t() { entry(); secret(); }\n}\nfn secret() {}\n",
    )]);
    assert!(g.fns.iter().all(|f| f.name != "t"), "test fn extracted");
    assert!(!reachable_names(&g).contains(&"secret".into()));
}

#[test]
fn roots_report_file_and_line() {
    let (files, g) = graph_of(&[(
        "crates/cluster/src/node.rs",
        "// PURITY-ROOT\npub fn run_node_sched() {}\n",
    )]);
    let roots = g.roots();
    assert_eq!(roots.len(), 1);
    let f = &g.fns[roots[0]];
    assert_eq!(files[f.file].path, "crates/cluster/src/node.rs");
    assert_eq!(f.line, 2);
}
