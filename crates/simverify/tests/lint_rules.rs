//! Fixture tests: one passing and one violating snippet per lint rule,
//! plus the scanner's escape hatches (test-module skip, comment skip,
//! `INVARIANT:` comments, the allowlist).

use simverify::lint::{lint_source, Allowlist, RULES};

fn violations(path: &str, src: &str) -> Vec<String> {
    let mut allow = Allowlist::empty();
    lint_source(path, src, RULES, &mut allow).iter().map(|v| v.rule.to_string()).collect()
}

// ---------------------------------------------------------------- SV001

#[test]
fn sv001_flags_wall_clock_in_sim_crate() {
    let src = "fn f() {\n    let t = std::time::Instant::now();\n}\n";
    assert_eq!(violations("crates/simcore/src/event.rs", src), vec!["SV001"]);
    let src = "fn f() -> std::time::SystemTime { std::time::SystemTime::now() }\n";
    assert!(violations("crates/power5/src/chip.rs", src).contains(&"SV001".to_string()));
}

#[test]
fn sv001_passes_sim_time_and_other_crates() {
    let src = "fn f(now: SimTime) -> SimTime { now + SimDuration::from_nanos(1) }\n";
    assert!(violations("crates/schedsim/src/kernel.rs", src).is_empty());
    // Wall clock outside the deterministic zone is fine (e.g. a CLI timer).
    let src = "fn f() { let _ = std::time::Instant::now(); }\n";
    assert!(violations("crates/experiments/src/runner.rs", src).is_empty());
}

// ---------------------------------------------------------------- SV002

#[test]
fn sv002_flags_hash_collections_in_decision_paths() {
    let src = "use std::collections::HashMap;\n";
    assert_eq!(violations("crates/schedsim/src/policies/detector.rs", src), vec!["SV002"]);
    let src = "struct S { seen: std::collections::HashSet<u64> }\n";
    assert_eq!(violations("crates/schedsim/src/program.rs", src), vec!["SV002"]);
}

#[test]
fn sv002_passes_btree_and_out_of_zone_files() {
    let src = "use std::collections::{BTreeMap, BTreeSet};\n";
    assert!(violations("crates/schedsim/src/policies/detector.rs", src).is_empty());
    // Membership-only HashSets outside decision paths are allowed.
    let src = "use std::collections::HashSet;\n";
    assert!(violations("crates/simcore/src/event.rs", src).is_empty());
}

// ---------------------------------------------------------------- SV003

#[test]
fn sv003_flags_panics_in_hot_paths() {
    for snippet in
        ["fn f() { panic!(\"boom\"); }\n", "fn f(x: Option<u8>) { x.unwrap(); }\n", "fn f(x: Option<u8>) { x.expect(\"set\"); }\n"]
    {
        assert_eq!(
            violations("crates/schedsim/src/kernel.rs", snippet),
            vec!["SV003"],
            "snippet: {snippet}"
        );
    }
}

#[test]
fn sv003_invariant_comment_is_honoured() {
    let src = "fn f(x: Option<u8>) {\n    // INVARIANT: callers checked x.\n    x.unwrap();\n}\n";
    assert!(violations("crates/schedsim/src/classes/rt.rs", src).is_empty());
    // ...but only within the lookback window.
    let pad = "    let _ = 1;\n".repeat(8);
    let src = format!("fn f(x: Option<u8>) {{\n    // INVARIANT: far away.\n{pad}    x.unwrap();\n}}\n");
    assert_eq!(violations("crates/schedsim/src/classes/rt.rs", &src), vec!["SV003"]);
}

#[test]
fn sv003_passes_error_propagation() {
    let src = "fn f(x: Option<u8>) -> Result<u8, SchedError> {\n    x.ok_or(SchedError::InvalidTopology)\n}\n";
    assert!(violations("crates/schedsim/src/policies/mechanism.rs", src).is_empty());
}

// ---------------------------------------------------------------- SV004

#[test]
fn sv004_flags_deprecated_shims_anywhere_in_crates() {
    let src = "fn f(k: &mut Kernel) { k.set_trace(Box::new(NullSink)); }\n";
    assert_eq!(violations("crates/workloads/src/metbench.rs", src), vec!["SV004"]);
    let src = "fn f(k: &mut Kernel) { let _ = k.take_trace(); }\n";
    assert_eq!(violations("crates/tracefmt/src/lib.rs", src), vec!["SV004"]);
}

#[test]
fn sv004_flags_the_deprecated_builder_outside_the_facade() {
    let src = "fn f() { let k = HpcKernelBuilder::new().build(); }\n";
    assert_eq!(violations("crates/workloads/src/metbench.rs", src), vec!["SV004"]);
    // The hpcsched facade defines the delegating shim; only it may spell
    // the name.
    assert!(violations("crates/core/src/runtime.rs", src).is_empty());
    assert!(violations("crates/core/src/lib.rs", src).is_empty());
}

#[test]
fn sv004_flags_even_the_former_shim_home_and_passes_observe() {
    // The shims are gone from kernel.rs, so its carve-out is gone too:
    // a resurrected caller there is flagged like anywhere else.
    let src = "fn f(k: &mut Kernel) { k.set_trace(Box::new(NullSink)); }\n";
    assert_eq!(violations("crates/schedsim/src/kernel.rs", src), vec!["SV004"]);
    let src = "fn f(k: &mut Kernel) { k.observe(Box::new(SharedSink::new())); }\n";
    assert!(violations("crates/workloads/src/metbench.rs", src).is_empty());
}

// ---------------------------------------------------------------- SV005

#[test]
fn sv005_flags_undocumented_tunable_field() {
    let src = "pub struct HpcTunables {\n    /// Documented.\n    pub low_util: f64,\n    pub high_util: f64,\n}\n";
    let v = violations("crates/schedsim/src/policies/tunables.rs", src);
    assert_eq!(v, vec!["SV005"]);
}

#[test]
fn sv005_passes_documented_fields_and_attributes() {
    let src = "pub struct HpcTunables {\n    /// Documented.\n    #[serde(default)]\n    pub low_util: f64,\n}\n";
    assert!(violations("crates/schedsim/src/policies/tunables.rs", src).is_empty());
    // Methods and consts are not fields.
    let src = "impl T {\n    pub fn get(&self) -> u8 { 0 }\n    pub const X: u8 = 1;\n}\n";
    assert!(violations("crates/schedsim/src/policies/tunables.rs", src).is_empty());
}

// ------------------------------------------------------- scanner mechanics

#[test]
fn test_modules_and_comments_are_skipped() {
    let src = "fn ok() {}\n// a comment mentioning Instant::now is fine\n#[cfg(test)]\nmod tests {\n    fn t() { let _ = std::time::Instant::now(); panic!(); }\n}\n";
    assert!(violations("crates/schedsim/src/kernel.rs", src).is_empty());
}

#[test]
fn violation_renders_file_line_rule() {
    let src = "fn f() {\n    let t = Instant::now();\n}\n";
    let mut allow = Allowlist::empty();
    let v = lint_source("crates/simcore/src/event.rs", src, RULES, &mut allow);
    assert_eq!(v.len(), 1);
    let rendered = v[0].to_string();
    assert!(
        rendered.starts_with("crates/simcore/src/event.rs:2: SV001: "),
        "got: {rendered}"
    );
}

#[test]
fn allowlist_suppresses_and_tracks_usage() {
    let mut allow = Allowlist::parse(
        "# comment\n\
         SV001 path=crates/simcore/src/event.rs frag=Instant::now expires=2030-01-01 reason=test entry\n\
         SV003 path=crates/never/matched.rs frag=panic! expires=2030-01-01 reason=stale on purpose\n",
    )
    .expect("valid allowlist");
    let src = "fn f() { let t = Instant::now(); }\n";
    let v = lint_source("crates/simcore/src/event.rs", src, RULES, &mut allow);
    assert!(v.is_empty(), "allowlisted line still flagged: {v:?}");
    let today = simverify::lint::Date(0);
    let unused: Vec<_> = allow.unused(today).iter().map(|e| e.rule.clone()).collect();
    assert_eq!(unused, vec!["SV003"], "only the unmatched entry is stale");
}

#[test]
fn allowlist_rejects_malformed_lines() {
    // The pre-§13 three-column format is rejected outright.
    assert!(Allowlist::parse("SV001 crates/x.rs Instant::now\n").is_err());
    assert!(Allowlist::parse("SV001 onlytwo\n").is_err());
    // Justified entries need every field.
    assert!(Allowlist::parse("SV001 path=x frag=y expires=2030-01-01\n").is_err());
    assert!(Allowlist::parse("").expect("empty ok").entries.is_empty());
}
