//! Negative tests: feed the conformance checker deliberately corrupted
//! traces and assert the *specific* rule that must fire — plus clean-trace
//! and determinism-harness baselines.

use power5::{CpuId, HwPriority};
use schedsim::{TaskId, TaskState, TraceEvent, TraceRecord};
use simcore::{SimDuration, SimTime};
use simverify::conformance::{check_trace, check_with_metrics, CheckConfig};
use simverify::determinism;
use telemetry::MetricsRegistry;

fn at(ns: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_nanos(ns)
}

fn rec(ns: u64, task: usize, event: TraceEvent) -> TraceRecord {
    TraceRecord { time: at(ns), task: TaskId(task), event }
}

fn prio(v: u8) -> HwPriority {
    HwPriority::new(v).expect("valid priority")
}

fn rules(records: &[TraceRecord]) -> Vec<&'static str> {
    check_trace(records, &CheckConfig::default()).violations.iter().map(|v| v.rule).collect()
}

#[test]
fn clean_trace_reports_no_violations() {
    let records = vec![
        rec(0, 0, TraceEvent::Spawn { name: "P1".into() }),
        rec(0, 0, TraceEvent::State { state: TaskState::Runnable, cpu: Some(CpuId(0)) }),
        rec(10, 0, TraceEvent::State { state: TaskState::Running, cpu: Some(CpuId(0)) }),
        rec(50, 0, TraceEvent::HwPrio { prio: HwPriority::HIGH }),
        rec(90, 0, TraceEvent::IterationEnd { index: 0, utilization: 0.5 }),
        rec(99, 0, TraceEvent::Exit),
    ];
    let report = check_trace(&records, &CheckConfig::default());
    assert!(report.is_clean(), "{}", report.render());
    assert_eq!(report.records_checked, 6);
}

#[test]
fn out_of_range_priority_reports_c001() {
    // 7 (single-thread mode) is a valid POWER5 priority but outside the
    // HPC class bounds [4, 6] — exactly the corruption C001 exists for.
    let records = vec![rec(10, 0, TraceEvent::HwPrio { prio: prio(7) })];
    assert_eq!(rules(&records), vec!["C001-priority-bounds"]);
    let records = vec![rec(10, 0, TraceEvent::HwPrio { prio: prio(2) })];
    assert_eq!(rules(&records), vec!["C001-priority-bounds"]);
    // Custom bounds move the window.
    let cfg = CheckConfig { min_prio: prio(2), max_prio: prio(6) };
    let records = vec![rec(10, 0, TraceEvent::HwPrio { prio: prio(2) })];
    assert!(check_trace(&records, &cfg).is_clean());
}

#[test]
fn time_regression_reports_c002() {
    let records = vec![
        rec(100, 0, TraceEvent::Spawn { name: "P1".into() }),
        rec(40, 0, TraceEvent::Exit),
    ];
    assert_eq!(rules(&records), vec!["C002-monotonic-time"]);
}

#[test]
fn double_occupancy_reports_c003() {
    // Two different tasks Running on cpu0 with no transition in between.
    let records = vec![
        rec(10, 0, TraceEvent::State { state: TaskState::Running, cpu: Some(CpuId(0)) }),
        rec(20, 1, TraceEvent::State { state: TaskState::Running, cpu: Some(CpuId(0)) }),
    ];
    assert_eq!(rules(&records), vec!["C003-cpu-occupancy"]);

    // A Running record without a CPU is equally malformed.
    let records = vec![rec(10, 0, TraceEvent::State { state: TaskState::Running, cpu: None })];
    assert_eq!(rules(&records), vec!["C003-cpu-occupancy"]);

    // The same task re-dispatched on the same CPU is legitimate, as is a
    // successor after the previous occupant left.
    let records = vec![
        rec(10, 0, TraceEvent::State { state: TaskState::Running, cpu: Some(CpuId(0)) }),
        rec(20, 0, TraceEvent::State { state: TaskState::Running, cpu: Some(CpuId(0)) }),
        rec(30, 0, TraceEvent::State { state: TaskState::Sleeping, cpu: Some(CpuId(0)) }),
        rec(30, 1, TraceEvent::State { state: TaskState::Running, cpu: Some(CpuId(0)) }),
    ];
    assert!(check_trace(&records, &CheckConfig::default()).is_clean());
}

#[test]
fn task_on_two_cpus_reports_c003() {
    let records = vec![
        rec(10, 0, TraceEvent::State { state: TaskState::Running, cpu: Some(CpuId(0)) }),
        rec(20, 0, TraceEvent::State { state: TaskState::Running, cpu: Some(CpuId(1)) }),
    ];
    assert_eq!(rules(&records), vec!["C003-cpu-occupancy"]);
}

#[test]
fn counter_mismatch_reports_c005() {
    let records = vec![
        rec(10, 0, TraceEvent::State { state: TaskState::Running, cpu: Some(CpuId(0)) }),
        rec(99, 0, TraceEvent::Exit),
    ];
    // Registry claims two exits; the trace shows one.
    let registry = MetricsRegistry::new();
    let exits = registry.counter("kernel.task_exits");
    exits.inc();
    exits.inc();
    // A plausible switch count is fine (>= the 1 the trace proves).
    registry.counter("kernel.context_switches").inc();
    let report =
        check_with_metrics(&records, &registry.snapshot(), &CheckConfig::default());
    let rules: Vec<_> = report.violations.iter().map(|v| v.rule).collect();
    assert_eq!(rules, vec!["C005-switch-accounting"]);
    assert!(report.violations[0].detail.contains("kernel.task_exits"));
}

#[test]
fn undercounted_switches_report_c005() {
    // Three distinct occupants of cpu0, but the counter only saw one
    // switch: the telemetry and trace views disagree.
    let registry = MetricsRegistry::new();
    registry.counter("kernel.context_switches").inc();
    let records = vec![
        rec(10, 0, TraceEvent::State { state: TaskState::Running, cpu: Some(CpuId(0)) }),
        rec(20, 0, TraceEvent::State { state: TaskState::Runnable, cpu: Some(CpuId(0)) }),
        rec(20, 1, TraceEvent::State { state: TaskState::Running, cpu: Some(CpuId(0)) }),
        rec(30, 1, TraceEvent::State { state: TaskState::Runnable, cpu: Some(CpuId(0)) }),
        rec(30, 2, TraceEvent::State { state: TaskState::Running, cpu: Some(CpuId(0)) }),
    ];
    let report =
        check_with_metrics(&records, &registry.snapshot(), &CheckConfig::default());
    let rules: Vec<_> = report.violations.iter().map(|v| v.rule).collect();
    assert_eq!(rules, vec!["C005-switch-accounting"]);
    assert!(report.violations[0].detail.contains("context_switches"));
}

#[test]
fn violation_rendering_names_rule_time_and_task() {
    let records = vec![rec(10, 3, TraceEvent::HwPrio { prio: prio(7) })];
    let report = check_trace(&records, &CheckConfig::default());
    let line = report.violations[0].to_string();
    assert!(line.contains("C001-priority-bounds"), "{line}");
    assert!(line.contains("10ns"), "{line}");
    assert!(line.contains("task3"), "{line}");
    assert!(report.render().contains("1 violation"));
}

// ------------------------------------------------------------ determinism

#[test]
fn determinism_harness_passes_identical_traces() {
    let trace = vec![rec(1, 0, TraceEvent::Exit)];
    let t = trace.clone();
    assert!(matches!(determinism::check(move || t.clone()), Ok(1)));
    assert!(determinism::first_divergence(&trace, &trace).is_none());
}

#[test]
fn determinism_harness_reports_first_divergence() {
    let a = vec![
        rec(1, 0, TraceEvent::Spawn { name: "P1".into() }),
        rec(5, 0, TraceEvent::Exit),
    ];
    let b = vec![
        rec(1, 0, TraceEvent::Spawn { name: "P1".into() }),
        rec(9, 0, TraceEvent::Exit),
    ];
    let d = determinism::first_divergence(&a, &b).expect("traces differ");
    assert_eq!(d.index, 1);
    assert_eq!(d.first.as_ref().map(|r| r.time), Some(at(5)));
    assert_eq!(d.second.as_ref().map(|r| r.time), Some(at(9)));
    assert!(d.to_string().contains("record 1"));
}

#[test]
fn determinism_harness_reports_length_divergence() {
    let a = vec![rec(1, 0, TraceEvent::Exit)];
    let b: Vec<TraceRecord> = Vec::new();
    let d = determinism::first_divergence(&a, &b).expect("lengths differ");
    assert_eq!(d.index, 0);
    assert!(d.first.is_some());
    assert!(d.second.is_none());
}
