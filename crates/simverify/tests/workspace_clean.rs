//! Self-check: the real workspace is clean under all twelve rules, the
//! declared purity roots are present, and the JSON report is byte-stable.

use simverify::lint::{lint_workspace_at, Date};
use std::path::PathBuf;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Pinned date so this test cannot start failing purely by calendar; the
/// verify bin and CI run with the real date and catch expiry first.
fn pinned() -> Date {
    Date::parse("2026-08-09").unwrap()
}

#[test]
fn workspace_is_clean_under_all_rules() {
    let r = lint_workspace_at(&repo_root(), pinned()).expect("workspace scan");
    assert!(r.violations.is_empty(), "violations:\n{}", {
        r.violations.iter().map(|v| v.to_string()).collect::<Vec<_>>().join("\n")
    });
    assert!(r.unused_allow.is_empty(), "stale allowlist entries: {:?}", r.unused_allow);
    assert!(r.expired_allow.is_empty(), "expired allowlist entries: {:?}", r.expired_allow);
    assert!(r.is_passing());
}

#[test]
fn declared_purity_roots_are_present() {
    let r = lint_workspace_at(&repo_root(), pinned()).expect("workspace scan");
    let root_names: Vec<&str> = r.roots.iter().map(|ri| ri.name.as_str()).collect();
    for expected in ["run_node", "run_node_sched", "run_node_traced", "run_batch", "run_until_exited"]
    {
        assert!(root_names.contains(&expected), "missing purity root {expected}: {root_names:?}");
    }
    // The policy zoo contributes Balancer-impl roots without markers.
    assert!(
        r.roots.iter().any(|ri| ri.file.contains("policies/")),
        "no Balancer impl roots found: {:?}",
        r.roots
    );
    assert!(r.reachable_fns > 0 && r.reachable_fns <= r.total_fns);
}

#[test]
fn json_report_is_byte_stable_across_runs() {
    let a = lint_workspace_at(&repo_root(), pinned()).expect("first run").to_json();
    let b = lint_workspace_at(&repo_root(), pinned()).expect("second run").to_json();
    assert_eq!(a, b, "JSON report must be byte-identical across runs");
    assert!(a.starts_with("{\n  \"schema\": \"simverify-lint/1\","));
    assert!(a.ends_with("}\n"));
    // Spot-check schema fields the CI baseline diff depends on.
    for key in ["\"files_scanned\"", "\"functions\"", "\"rules\"", "\"roots\"", "\"findings\"", "\"allow\""]
    {
        assert!(a.contains(key), "missing key {key}");
    }
}
