//! Fixture-workspace tests for the reachability rule family (SV006–SV014),
//! the lexer false-positive guarantees, and allowlist expiry semantics.
//!
//! Each fixture under `tests/fixtures/<case>/` is a miniature workspace
//! (`crates/<crate>/src/*.rs`, optional `simverify.allow`) scanned with
//! [`simverify::lint::lint_workspace_at`] at a pinned date, so outcomes
//! are independent of when the suite runs.

use simverify::lint::{lint_workspace_at, Date, LintReport};
use std::path::PathBuf;

fn run_fixture(case: &str) -> LintReport {
    run_fixture_at(case, Date::parse("2026-08-09").unwrap())
}

fn run_fixture_at(case: &str, today: Date) -> LintReport {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(case);
    lint_workspace_at(&root, today).unwrap_or_else(|e| panic!("fixture {case}: {e}"))
}

/// `(rule, file, line)` triples of the findings, for exact assertions.
fn findings(r: &LintReport) -> Vec<(String, String, usize)> {
    r.violations.iter().map(|v| (v.rule.to_string(), v.file.clone(), v.line)).collect()
}

// ----------------------------------------------------- SV006–SV012 fixtures

#[test]
fn sv006_flags_reachable_wall_clock_and_ignores_unreachable() {
    let r = run_fixture("sv006");
    assert_eq!(
        findings(&r),
        vec![("SV006".into(), "crates/app/src/lib.rs".into(), 3)],
        "the unreached fn holds the same pattern and must stay silent"
    );
}

#[test]
fn sv007_flags_ambient_randomness() {
    let r = run_fixture("sv007");
    assert_eq!(findings(&r), vec![("SV007".into(), "crates/app/src/lib.rs".into(), 3)]);
}

#[test]
fn sv008_flags_hash_collections_and_passes_btree() {
    let r = run_fixture("sv008");
    assert_eq!(
        findings(&r),
        vec![("SV008".into(), "crates/app/src/lib.rs".into(), 3)],
        "the BTreeMap twin entry point must be clean"
    );
}

#[test]
fn sv009_flags_shared_mutable_state() {
    let r = run_fixture("sv009");
    let f = findings(&r);
    assert_eq!(f.len(), 2, "Mutex::new and .lock(): {f:?}");
    assert!(f.iter().all(|(rule, file, _)| rule == "SV009" && file == "crates/app/src/lib.rs"));
    assert!(
        !f.iter().any(|(_, _, line)| *line > 6),
        "static mut in the unreached fn must stay silent: {f:?}"
    );
}

#[test]
fn sv010_flags_filesystem_reads() {
    let r = run_fixture("sv010");
    assert_eq!(findings(&r), vec![("SV010".into(), "crates/app/src/lib.rs".into(), 3)]);
}

#[test]
fn sv011_flags_float_ordering() {
    let r = run_fixture("sv011");
    assert_eq!(findings(&r), vec![("SV011".into(), "crates/app/src/lib.rs".into(), 3)]);
}

#[test]
fn sv012_flags_unordered_channels() {
    let r = run_fixture("sv012");
    assert_eq!(findings(&r), vec![("SV012".into(), "crates/app/src/lib.rs".into(), 3)]);
}

#[test]
fn sv013_flags_unchecked_snapshot_reads_but_not_the_definition() {
    let r = run_fixture("sv013");
    assert_eq!(
        findings(&r),
        vec![("SV013".into(), "crates/app/src/lib.rs".into(), 3)],
        "only the `::new_unchecked` call site fires; `fn new_unchecked(` and \
         the checked twin stay silent"
    );
}

#[test]
fn sv014_flags_reachable_per_job_push_in_stats_zone() {
    let r = run_fixture("sv014");
    assert_eq!(
        findings(&r),
        vec![("SV014".into(), "crates/batchsim/src/stats.rs".into(), 5)],
        "only the reachable `.push(` fires; the scalar-fold twin and the \
         unreached fn stay silent"
    );
}

// -------------------------------------------------------------- reachability

#[test]
fn violation_two_module_hops_below_a_root_is_found() {
    let r = run_fixture("reach_two_hops");
    assert_eq!(
        findings(&r),
        vec![("SV006".into(), "crates/app/src/c.rs".into(), 2)],
        "entry -> helper_b -> helper_c chain must carry reachability"
    );
    assert_eq!(r.roots.len(), 1);
    assert_eq!(r.roots[0].name, "entry");
    assert!(r.reachable_fns >= 3, "entry, helper_b, helper_c: {}", r.reachable_fns);
}

// -------------------------------------------------- lexer false positives

#[test]
fn patterns_in_comments_strings_and_tests_never_fire() {
    let r = run_fixture("lexer_fp");
    assert!(
        r.violations.is_empty(),
        "grep-era false positives resurfaced: {:?}",
        r.violations
    );
    assert_eq!(r.files_scanned, 1);
}

// ------------------------------------------------------- allowlist expiry

#[test]
fn expired_entries_stop_suppressing_and_fail_the_run() {
    let r = run_fixture_at("allow_expiry", Date::parse("2026-08-09").unwrap());
    assert_eq!(
        findings(&r),
        vec![("SV006".into(), "crates/sim/src/lib.rs".into(), 3)],
        "the expired entry must no longer suppress"
    );
    assert_eq!(r.expired_allow.len(), 1);
    assert_eq!(r.unused_allow.len(), 1, "the thread_rng entry matches nothing");
    assert!(!r.is_passing());
}

#[test]
fn live_entries_suppress_but_stale_ones_still_fail() {
    let r = run_fixture_at("allow_expiry", Date::parse("2025-12-01").unwrap());
    assert!(r.is_clean(), "before expiry the entry suppresses: {:?}", r.violations);
    assert!(r.expired_allow.is_empty());
    assert_eq!(r.unused_allow.len(), 1);
    assert!(!r.is_passing(), "a stale entry alone must fail the run");
}
