//! Trace-invariant conformance checker: one linear pass over the records a
//! run's [`schedsim::SharedSink`] collected, asserting the invariants the
//! paper's results rest on.
//!
//! | rule | invariant |
//! |------|-----------|
//! | `C001-priority-bounds`   | every applied hardware priority stays inside the tunable bounds (paper §IV-B: `[MEDIUM, HIGH]` by default) |
//! | `C002-monotonic-time`    | record timestamps never decrease |
//! | `C003-cpu-occupancy`     | at most one task runs per logical CPU, and a running task occupies exactly one CPU |
//! | `C004-decode-ratio`      | the decode-slot arbiter reproduces Table I (`R = 2^(d+1)`, split `R−1 : 1`) for every priority pair the run exercised |
//! | `C005-switch-accounting` | telemetry counters reconcile with the trace: exits, priority transitions and iterations match 1:1, context switches are bounded below by the switches the trace shows |
//!
//! The checker never panics on malformed input — corrupted traces are
//! exactly what it exists to report.

use power5::decode::SlotArbiter;
use power5::{decode_interval, decode_share, CpuId, HwPriority};
use schedsim::{TaskId, TaskState, TraceEvent, TraceRecord};
use simcore::SimTime;
use std::collections::BTreeMap;
use std::fmt;
use telemetry::MetricsSnapshot;

/// Bounds the run's priorities must respect.
#[derive(Clone, Copy, Debug)]
pub struct CheckConfig {
    pub min_prio: HwPriority,
    pub max_prio: HwPriority,
}

impl Default for CheckConfig {
    /// The paper's defaults (§IV-B): the HPC class moves priorities within
    /// `[MEDIUM, HIGH]` = `[4, 6]`.
    fn default() -> Self {
        CheckConfig { min_prio: HwPriority::MEDIUM, max_prio: HwPriority::HIGH }
    }
}

/// One invariant violation.
#[derive(Clone, Debug)]
pub struct Violation {
    pub rule: &'static str,
    /// Sim time of the offending record, when one exists.
    pub at: Option<SimTime>,
    pub task: Option<TaskId>,
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.rule)?;
        if let Some(t) = self.at {
            write!(f, " @ {}ns", t.as_nanos())?;
        }
        if let Some(task) = self.task {
            write!(f, " {task}")?;
        }
        write!(f, ": {}", self.detail)
    }
}

/// Everything a conformance pass found.
#[derive(Clone, Debug, Default)]
pub struct Report {
    pub violations: Vec<Violation>,
    pub records_checked: usize,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Human-readable multi-line summary.
    pub fn render(&self) -> String {
        if self.is_clean() {
            return format!("conformance: OK ({} records)", self.records_checked);
        }
        let mut out = format!(
            "conformance: {} violation(s) in {} records\n",
            self.violations.len(),
            self.records_checked
        );
        for v in &self.violations {
            out.push_str(&format!("  {v}\n"));
        }
        out
    }

    fn push(&mut self, rule: &'static str, rec: Option<&TraceRecord>, detail: String) {
        self.violations.push(Violation {
            rule,
            at: rec.map(|r| r.time),
            task: rec.map(|r| r.task),
            detail,
        });
    }
}

/// Validate a trace against the sim-side invariants (C001–C004).
pub fn check_trace(records: &[TraceRecord], cfg: &CheckConfig) -> Report {
    let mut report = Report { violations: Vec::new(), records_checked: records.len() };

    let mut last_time: Option<SimTime> = None;
    // CPU → occupying task, and the inverse, maintained from State records.
    let mut occupant: BTreeMap<CpuId, TaskId> = BTreeMap::new();
    let mut running_on: BTreeMap<TaskId, CpuId> = BTreeMap::new();
    // Regular priorities the run exercised, for the Table I cross-check.
    let mut seen_prios: BTreeMap<u8, HwPriority> = BTreeMap::new();
    seen_prios.insert(HwPriority::MEDIUM.value(), HwPriority::MEDIUM);

    for rec in records {
        // C002: sim time is non-decreasing along the record stream.
        if let Some(prev) = last_time {
            if rec.time < prev {
                report.push(
                    "C002-monotonic-time",
                    Some(rec),
                    format!("time ran backwards: {}ns after {}ns", rec.time.as_nanos(), prev.as_nanos()),
                );
            }
        }
        last_time = Some(last_time.map_or(rec.time, |p| p.max(rec.time)));

        match &rec.event {
            TraceEvent::HwPrio { prio } => {
                // C001: applied priorities stay inside the tunable bounds.
                if *prio < cfg.min_prio || *prio > cfg.max_prio {
                    report.push(
                        "C001-priority-bounds",
                        Some(rec),
                        format!(
                            "priority {} outside [{}, {}]",
                            prio, cfg.min_prio, cfg.max_prio
                        ),
                    );
                }
                if prio.is_regular() {
                    seen_prios.insert(prio.value(), *prio);
                }
            }
            TraceEvent::State { state: TaskState::Running, cpu } => {
                // C003: a running task holds exactly one CPU, exclusively.
                let Some(c) = cpu else {
                    report.push(
                        "C003-cpu-occupancy",
                        Some(rec),
                        "Running record without a CPU".to_string(),
                    );
                    continue;
                };
                if let Some(&other) = occupant.get(c) {
                    if other != rec.task {
                        report.push(
                            "C003-cpu-occupancy",
                            Some(rec),
                            format!("cpu{} already occupied by {other}", c.0),
                        );
                    }
                }
                if let Some(&prev_cpu) = running_on.get(&rec.task) {
                    if prev_cpu != *c {
                        report.push(
                            "C003-cpu-occupancy",
                            Some(rec),
                            format!("task still running on cpu{}", prev_cpu.0),
                        );
                        occupant.remove(&prev_cpu);
                    }
                }
                occupant.insert(*c, rec.task);
                running_on.insert(rec.task, *c);
            }
            TraceEvent::State { .. } | TraceEvent::Exit => {
                // Any non-Running transition releases the task's CPU.
                if let Some(c) = running_on.remove(&rec.task) {
                    if occupant.get(&c) == Some(&rec.task) {
                        occupant.remove(&c);
                    }
                }
            }
            TraceEvent::Spawn { .. } | TraceEvent::IterationEnd { .. } => {}
        }
    }

    check_decode_model(&mut report, &seen_prios);
    report
}

/// C004: for every pair of regular priorities the run exercised, the
/// cycle-accurate arbiter and the closed-form share must both reproduce
/// Table I — `R = 2^(d+1)` cycles per window, split `R−1 : 1` (1 : 1 for
/// equal priorities).
fn check_decode_model(report: &mut Report, seen: &BTreeMap<u8, HwPriority>) {
    for &hi in seen.values() {
        for &lo in seen.values() {
            if lo > hi {
                continue;
            }
            let d = hi.diff(lo);
            let r = decode_interval(d) as u64;
            let mut arb = SlotArbiter::new(hi, lo);
            if arb.window() as u64 != r {
                report.push(
                    "C004-decode-ratio",
                    None,
                    format!("window for ({hi},{lo}) is {} not R=2^(d+1)={r}", arb.window()),
                );
                continue;
            }
            let (a, b) = arb.run(r);
            let (want_a, want_b) = if hi == lo { (1, 1) } else { (r - 1, 1) };
            if (a, b) != (want_a, want_b) {
                report.push(
                    "C004-decode-ratio",
                    None,
                    format!("arbiter gave ({hi},{lo}) = {a}:{b} per window, Table I says {want_a}:{want_b}"),
                );
            }
            let share = decode_share(hi, lo);
            let want_share = want_a as f64 / r as f64;
            if (share.a - want_share).abs() > 1e-9 {
                report.push(
                    "C004-decode-ratio",
                    None,
                    format!(
                        "closed-form share for ({hi},{lo}) is {:.6}, arbiter says {:.6}",
                        share.a, want_share
                    ),
                );
            }
        }
    }
}

/// C005: reconcile telemetry counters with the trace, then run the
/// sim-side checks. The exit/priority/iteration counters are bumped at the
/// emission point, so with an observer attached before the run they match
/// the record stream exactly; `kernel.context_switches` also counts
/// dispatches that predate observer attachment (the kernel spawns noise
/// daemons at construction), so the trace only bounds it from below.
pub fn check_with_metrics(
    records: &[TraceRecord],
    snapshot: &MetricsSnapshot,
    cfg: &CheckConfig,
) -> Report {
    let mut report = check_trace(records, cfg);

    let count = |pred: &dyn Fn(&TraceEvent) -> bool| -> u64 {
        records.iter().filter(|r| pred(&r.event)).count() as u64
    };
    let exact = [
        ("kernel.task_exits", count(&|e| matches!(e, TraceEvent::Exit))),
        ("kernel.hw_prio_transitions", count(&|e| matches!(e, TraceEvent::HwPrio { .. }))),
        ("kernel.iterations", count(&|e| matches!(e, TraceEvent::IterationEnd { .. }))),
    ];
    for (name, traced) in exact {
        let counted = snapshot.counter(name);
        if counted != traced {
            report.push(
                "C005-switch-accounting",
                None,
                format!("counter {name} = {counted}, trace shows {traced}"),
            );
        }
    }

    // Minimum switches the trace proves: per CPU, each Running record whose
    // occupant differs from the previous one. Redispatches of the same task
    // (tick preemption, yield) legitimately emit Running without a switch.
    let mut last_running: BTreeMap<CpuId, TaskId> = BTreeMap::new();
    let mut min_switches = 0u64;
    for rec in records {
        if let TraceEvent::State { state: TaskState::Running, cpu: Some(c) } = &rec.event {
            if last_running.insert(*c, rec.task) != Some(rec.task) {
                min_switches += 1;
            }
        }
    }
    let switches = snapshot.counter("kernel.context_switches");
    if switches < min_switches {
        report.push(
            "C005-switch-accounting",
            None,
            format!(
                "counter kernel.context_switches = {switches}, trace proves at least {min_switches}"
            ),
        );
    }
    report
}
