//! Correctness tooling for the simulator workspace (DESIGN.md §8, §13):
//!
//! * [`lex`] — a minimal hand-rolled Rust lexer producing line-numbered
//!   tokens that skip comments, strings and `#[cfg(test)]` items, so rules
//!   match *code* rather than text.
//! * [`graph`] — conservative module-graph/call-edge extraction with
//!   reachability from declared purity roots (`PURITY-ROOT` markers and
//!   `Balancer` impls): the parallel-executor contract's pure zone.
//! * [`rules`] — the rule catalog SV001–SV014, the justified allowlist
//!   (`simverify.allow` with per-entry reason + expiry), and the stable
//!   JSON report.
//! * [`lint`] — the workspace driver tying the above together. Run it with
//!   `cargo run -p simverify --bin lint`; CI gates on the JSON report
//!   diffed against `simverify_baseline.json`.
//! * [`conformance`] — a linear-time validator over the trace records a
//!   [`schedsim::SharedSink`] collects, asserting the paper's runtime
//!   invariants: HPC hardware priorities stay inside the tunable bounds,
//!   decode-slot arbitration agrees with Table I, simulated time never runs
//!   backwards, one task per CPU, and telemetry counters reconcile with the
//!   trace.
//! * [`determinism`] — runs a workload twice with one seed and reports the
//!   first diverging trace record (EXPERIMENTS.md reproducibility rests on
//!   runs being pure functions of `(config, seed)`).

pub mod conformance;
pub mod determinism;
pub mod graph;
pub mod lex;
pub mod lint;
pub mod rules;
