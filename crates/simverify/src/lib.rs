//! Correctness tooling for the simulator workspace, in two layers
//! (DESIGN.md §8):
//!
//! * [`lint`] — a dependency-free source scanner enforcing architectural
//!   rules per crate zone: no wall-clock reads in deterministic crates, no
//!   iteration-order-sensitive collections in scheduler-decision paths, no
//!   panics in kernel hot paths, no internal use of deprecated trace shims,
//!   and documented tunables. Run it with `cargo run -p simverify --bin
//!   lint`; suppress individual lines via `simverify.allow` at the repo
//!   root.
//! * [`conformance`] — a linear-time validator over the trace records a
//!   [`schedsim::SharedSink`] collects, asserting the paper's runtime
//!   invariants: HPC hardware priorities stay inside the tunable bounds,
//!   decode-slot arbitration agrees with Table I, simulated time never runs
//!   backwards, one task per CPU, and telemetry counters reconcile with the
//!   trace.
//! * [`determinism`] — runs a workload twice with one seed and reports the
//!   first diverging trace record (EXPERIMENTS.md reproducibility rests on
//!   runs being pure functions of `(config, seed)`).

pub mod conformance;
pub mod determinism;
pub mod lint;
