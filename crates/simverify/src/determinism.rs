//! Determinism harness: a run is a pure function of `(config, seed)`, so
//! executing the same closure twice must yield byte-identical traces. The
//! harness reports the *first* diverging record — the point to start
//! debugging from — rather than a bare boolean.

use schedsim::TraceRecord;
use std::fmt;

/// The first point where two traces disagree.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// Index of the first differing record.
    pub index: usize,
    /// The record the first run produced there (`None`: trace ended early).
    pub first: Option<TraceRecord>,
    /// The record the second run produced there.
    pub second: Option<TraceRecord>,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "traces diverge at record {}:", self.index)?;
        match &self.first {
            Some(r) => writeln!(f, "  run 1: {r:?}")?,
            None => writeln!(f, "  run 1: <ended after {} records>", self.index)?,
        }
        match &self.second {
            Some(r) => write!(f, "  run 2: {r:?}"),
            None => write!(f, "  run 2: <ended after {} records>", self.index),
        }
    }
}

/// Compare two traces record-by-record.
pub fn first_divergence(a: &[TraceRecord], b: &[TraceRecord]) -> Option<Divergence> {
    let n = a.len().max(b.len());
    for i in 0..n {
        if a.get(i) != b.get(i) {
            return Some(Divergence {
                index: i,
                first: a.get(i).cloned(),
                second: b.get(i).cloned(),
            });
        }
    }
    None
}

/// Run `run` twice and require identical traces. Returns the record count
/// on success; the first divergence otherwise.
pub fn check<F: FnMut() -> Vec<TraceRecord>>(mut run: F) -> Result<usize, Divergence> {
    let a = run();
    let b = run();
    match first_divergence(&a, &b) {
        None => Ok(a.len()),
        Some(d) => Err(d),
    }
}
