//! Determinism harness: a run is a pure function of `(config, seed)`, so
//! executing the same closure twice must yield byte-identical traces. The
//! harness reports the *first* diverging record — the point to start
//! debugging from — rather than a bare boolean.

use schedsim::TraceRecord;
use std::fmt;

/// The first point where two traces disagree.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// Index of the first differing record.
    pub index: usize,
    /// The record the first run produced there (`None`: trace ended early).
    pub first: Option<TraceRecord>,
    /// The record the second run produced there.
    pub second: Option<TraceRecord>,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "traces diverge at record {}:", self.index)?;
        match &self.first {
            Some(r) => writeln!(f, "  run 1: {r:?}")?,
            None => writeln!(f, "  run 1: <ended after {} records>", self.index)?,
        }
        match &self.second {
            Some(r) => write!(f, "  run 2: {r:?}"),
            None => write!(f, "  run 2: <ended after {} records>", self.index),
        }
    }
}

/// Compare two traces record-by-record.
pub fn first_divergence(a: &[TraceRecord], b: &[TraceRecord]) -> Option<Divergence> {
    let n = a.len().max(b.len());
    for i in 0..n {
        if a.get(i) != b.get(i) {
            return Some(Divergence {
                index: i,
                first: a.get(i).cloned(),
                second: b.get(i).cloned(),
            });
        }
    }
    None
}

/// Run `run` twice and require identical traces. Returns the record count
/// on success; the first divergence otherwise.
pub fn check<F: FnMut() -> Vec<TraceRecord>>(mut run: F) -> Result<usize, Divergence> {
    let a = run();
    let b = run();
    match first_divergence(&a, &b) {
        None => Ok(a.len()),
        Some(d) => Err(d),
    }
}

/// The first line where two rendered text artifacts (event traces, metric
/// dumps) disagree — the byte-identity analogue of [`Divergence`] for
/// serial-vs-parallel comparisons.
#[derive(Clone, Debug)]
pub struct TextDivergence {
    /// What was being compared (e.g. `"trace"`, `"metrics"`).
    pub artifact: String,
    /// 1-based line number of the first differing line.
    pub line: usize,
    /// That line in the first artifact (`None`: it ended early).
    pub first: Option<String>,
    /// That line in the second artifact.
    pub second: Option<String>,
}

impl fmt::Display for TextDivergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} diverges at line {}:", self.artifact, self.line)?;
        match &self.first {
            Some(l) => writeln!(f, "  run 1: {l}")?,
            None => writeln!(f, "  run 1: <ended at line {}>", self.line)?,
        }
        match &self.second {
            Some(l) => write!(f, "  run 2: {l}"),
            None => write!(f, "  run 2: <ended at line {}>", self.line),
        }
    }
}

/// Compare two rendered artifacts line-by-line.
pub fn first_text_divergence(artifact: &str, a: &str, b: &str) -> Option<TextDivergence> {
    let (la, lb): (Vec<&str>, Vec<&str>) = (a.lines().collect(), b.lines().collect());
    let n = la.len().max(lb.len());
    for i in 0..n {
        if la.get(i) != lb.get(i) {
            return Some(TextDivergence {
                artifact: artifact.to_string(),
                line: i + 1,
                first: la.get(i).map(|s| s.to_string()),
                second: lb.get(i).map(|s| s.to_string()),
            });
        }
    }
    None
}

/// Require two rendered artifacts to be byte-identical. Returns the line
/// count on success; the first diverging line otherwise.
pub fn check_identical(artifact: &str, a: &str, b: &str) -> Result<usize, TextDivergence> {
    if a == b {
        return Ok(a.lines().count());
    }
    match first_text_divergence(artifact, a, b) {
        Some(d) => Err(d),
        // Same lines but different trailing bytes (e.g. a missing final
        // newline) — still a divergence, pinned past the last line.
        None => Err(TextDivergence {
            artifact: artifact.to_string(),
            line: a.lines().count() + 1,
            first: Some(format!("<{} bytes>", a.len())),
            second: Some(format!("<{} bytes>", b.len())),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_text_passes() {
        assert_eq!(check_identical("trace", "a\nb\n", "a\nb\n").unwrap(), 2);
    }

    #[test]
    fn first_differing_line_is_reported() {
        let d = check_identical("trace", "a\nb\nc\n", "a\nX\nc\n").unwrap_err();
        assert_eq!(d.line, 2);
        assert_eq!(d.first.as_deref(), Some("b"));
        assert_eq!(d.second.as_deref(), Some("X"));
    }

    #[test]
    fn early_end_is_reported() {
        let d = check_identical("trace", "a\n", "a\nb\n").unwrap_err();
        assert_eq!(d.line, 2);
        assert!(d.first.is_none());
        assert_eq!(d.second.as_deref(), Some("b"));
    }

    #[test]
    fn trailing_byte_difference_is_still_a_divergence() {
        assert!(check_identical("trace", "a\nb", "a\nb\n").is_err());
    }
}
