//! Machine-readable lint report: `--report json`.
//!
//! Hand-rolled rendering (the analyzer takes no serialization dependency)
//! with a stable schema and fully deterministic ordering — findings sorted
//! by (file, line, rule, pattern), roots by (file, line), allow entries in
//! file order — and no timestamps, so two runs over the same tree produce
//! byte-identical output. CI diffs this against the committed
//! `simverify_baseline.json`: new findings *and* silently vanished
//! coverage (fewer roots, fewer rules) both show up as a diff.

use crate::lint::LintReport;
use std::fmt::Write as _;

/// Schema identifier; bump on any structural change so baseline diffs
/// distinguish "new findings" from "new report format".
pub const SCHEMA: &str = "simverify-lint/1";

/// Escape a string for a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render the full report as pretty-printed JSON (2-space indent, trailing
/// newline). See module docs for the stability contract.
pub fn render_json(r: &LintReport) -> String {
    let mut s = String::with_capacity(4096);
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"{}\",", SCHEMA);
    let _ = writeln!(s, "  \"files_scanned\": {},", r.files_scanned);
    let _ = writeln!(
        s,
        "  \"functions\": {{ \"total\": {}, \"reachable\": {} }},",
        r.total_fns, r.reachable_fns
    );

    s.push_str("  \"rules\": [\n");
    for (i, rule) in crate::rules::RULES.iter().enumerate() {
        let scope = match rule.scope {
            crate::rules::Scope::Zones => "zones",
            crate::rules::Scope::Reachable => "reachable",
        };
        let _ = write!(
            s,
            "    {{ \"id\": \"{}\", \"scope\": \"{}\", \"summary\": \"{}\" }}",
            rule.id,
            scope,
            esc(&normalize_ws(rule.summary))
        );
        s.push_str(if i + 1 < crate::rules::RULES.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");

    s.push_str("  \"roots\": [\n");
    for (i, root) in r.roots.iter().enumerate() {
        let _ = write!(
            s,
            "    {{ \"file\": \"{}\", \"fn\": \"{}\", \"line\": {} }}",
            esc(&root.file),
            esc(&root.name),
            root.line
        );
        s.push_str(if i + 1 < r.roots.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");

    s.push_str("  \"findings\": [\n");
    for (i, v) in r.violations.iter().enumerate() {
        let _ = write!(
            s,
            "    {{ \"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"pattern\": \"{}\", \"message\": \"{}\" }}",
            esc(&v.file),
            v.line,
            v.rule,
            esc(&v.pattern),
            esc(&v.message)
        );
        s.push_str(if i + 1 < r.violations.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");

    s.push_str("  \"allow\": [\n");
    for (i, e) in r.allow_entries.iter().enumerate() {
        let _ = write!(
            s,
            "    {{ \"rule\": \"{}\", \"path\": \"{}\", \"frag\": \"{}\", \"expires\": \"{}\", \"status\": \"{}\", \"reason\": \"{}\" }}",
            esc(&e.rule),
            esc(&e.path),
            esc(&e.fragment),
            esc(&e.expires_text),
            e.status,
            esc(&e.reason)
        );
        s.push_str(if i + 1 < r.allow_entries.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n");
    s.push_str("}\n");
    s
}

/// Collapse the multi-line indented rule summaries to single-space text so
/// the JSON stays readable and stable regardless of source formatting.
fn normalize_ws(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}
