//! The rule catalog (SV001–SV014) and the token-level evaluation engine.
//!
//! Two rule scopes exist:
//!
//! * [`Scope::Zones`] — the rule applies to every file whose repo-relative
//!   path contains one of its zone substrings (the pre-§13 behaviour,
//!   now matched on *code tokens* instead of raw lines, so comments,
//!   strings and `#[cfg(test)]` items can no longer false-positive).
//! * [`Scope::Reachable`] — the rule applies only to token ranges inside
//!   the bodies of functions reachable from the declared purity roots
//!   (see [`crate::graph`]): the parallel-executor contract's pure zone.
//!
//! Escape hatches, in increasing order of ceremony: an `INVARIANT:`
//! comment (rules with `invariant_escape` only), and a justified
//! `simverify.allow` entry with a reason and an expiry date.

pub mod allow;
pub mod report;

use crate::graph::Graph;
use crate::lex::PreparedFile;
use allow::{Allowlist, Date};
use std::fmt;

/// How far above a flagged line an `INVARIANT` comment is honoured.
pub const INVARIANT_WINDOW: u32 = 5;

/// One forbidden token sequence: matched against consecutive *code*
/// tokens (whitespace-, comment- and string-insensitive). `show` is the
/// human rendering used in messages and the JSON report.
pub struct Pattern {
    pub toks: &'static [&'static str],
    pub show: &'static str,
}

/// What a rule forbids.
pub enum RuleKind {
    /// Any of these token sequences violates the rule.
    Tokens { patterns: &'static [Pattern] },
    /// Every `pub` struct field must carry a `///` doc comment.
    FieldsDocumented,
}

/// Where a rule applies.
#[derive(Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// Whole files selected by zone path substrings.
    Zones,
    /// Bodies of functions reachable from the purity roots, within files
    /// selected by the zone substrings.
    Reachable,
}

/// One architectural rule.
pub struct Rule {
    pub id: &'static str,
    pub summary: &'static str,
    pub kind: RuleKind,
    pub scope: Scope,
    /// Path substrings (forward-slash, repo-relative) the rule applies to.
    pub zones: &'static [&'static str],
    /// Path substrings excluded even when a zone matches (documented
    /// quarantines live here; line-level exceptions go to the allowlist).
    pub exempt: &'static [&'static str],
    /// Whether an `INVARIANT:` comment on or within [`INVARIANT_WINDOW`]
    /// lines above the flagged line silences the rule.
    pub invariant_escape: bool,
}

/// The rule table. SV001–SV005 are the zone rules from DESIGN.md §8,
/// re-homed onto the token stream; SV006–SV012 are the §13 purity rules
/// evaluated on the reachable set; SV013 guards checkpoint decoding, and
/// SV014 enforces the fleet-scale O(1)-memory statistics contract (§15).
pub const RULES: &[Rule] = &[
    Rule {
        id: "SV001",
        summary: "wall-clock read in a deterministic simulation crate",
        kind: RuleKind::Tokens {
            patterns: &[
                Pattern { toks: &["Instant", "::", "now"], show: "Instant::now" },
                Pattern { toks: &["SystemTime"], show: "SystemTime" },
            ],
        },
        scope: Scope::Zones,
        zones: &[
            "crates/simcore/src/",
            "crates/schedsim/src/",
            "crates/power5/src/",
            "crates/mpisim/src/",
            "crates/core/src/",
            "crates/faultsim/src/",
            "crates/batchsim/src/",
        ],
        exempt: &[],
        invariant_escape: false,
    },
    Rule {
        id: "SV002",
        summary: "iteration-order-sensitive collection in a scheduler-decision or \
                  trace-emitting path; use BTreeMap/BTreeSet",
        kind: RuleKind::Tokens {
            patterns: &[
                Pattern { toks: &["HashMap"], show: "HashMap" },
                Pattern { toks: &["HashSet"], show: "HashSet" },
            ],
        },
        scope: Scope::Zones,
        zones: &[
            "crates/schedsim/src/kernel.rs",
            "crates/schedsim/src/classes/",
            "crates/schedsim/src/program.rs",
            "crates/schedsim/src/balance.rs",
            "crates/schedsim/src/balancer.rs",
            "crates/schedsim/src/policies/",
            "crates/mpisim/src/collective.rs",
            "crates/faultsim/src/",
            "crates/batchsim/src/",
        ],
        exempt: &[],
        invariant_escape: false,
    },
    Rule {
        id: "SV003",
        summary: "panic in a kernel hot path; propagate SchedError or document the \
                  invariant with an INVARIANT: comment",
        kind: RuleKind::Tokens {
            patterns: &[
                Pattern { toks: &["panic", "!"], show: "panic!" },
                Pattern { toks: &[".", "unwrap", "("], show: ".unwrap()" },
                Pattern { toks: &[".", "expect", "("], show: ".expect(" },
            ],
        },
        scope: Scope::Zones,
        zones: &[
            "crates/schedsim/src/kernel.rs",
            "crates/schedsim/src/classes/",
            "crates/schedsim/src/balance.rs",
            "crates/schedsim/src/balancer.rs",
            "crates/schedsim/src/builder.rs",
            "crates/schedsim/src/policies/",
            "crates/mpisim/src/",
            "crates/faultsim/src/",
            "crates/batchsim/src/",
        ],
        exempt: &[],
        invariant_escape: true,
    },
    Rule {
        id: "SV004",
        summary: "deprecated shim; build with schedsim::KernelBuilder and attach \
                  sinks with Kernel::observe",
        kind: RuleKind::Tokens {
            patterns: &[
                Pattern { toks: &[".", "set_trace", "("], show: ".set_trace(" },
                Pattern { toks: &[".", "take_trace", "("], show: ".take_trace(" },
                Pattern { toks: &["HpcKernelBuilder"], show: "HpcKernelBuilder" },
            ],
        },
        scope: Scope::Zones,
        zones: &["crates/"],
        // Only the hpcsched facade may spell the deprecated builder (it
        // defines the delegating shim). The analyzer's own rule table is
        // string literals, invisible to token matching.
        exempt: &["crates/core/src/runtime.rs", "crates/core/src/lib.rs"],
        invariant_escape: false,
    },
    Rule {
        id: "SV005",
        summary: "tunable field without a doc comment",
        kind: RuleKind::FieldsDocumented,
        scope: Scope::Zones,
        zones: &["crates/schedsim/src/policies/tunables.rs"],
        exempt: &[],
        invariant_escape: false,
    },
    Rule {
        id: "SV006",
        summary: "nondeterministic time source reachable from a purity root; \
                  simulation state must be a function of (seed, inputs), not the host clock",
        kind: RuleKind::Tokens {
            patterns: &[
                Pattern { toks: &["Instant", "::", "now"], show: "Instant::now" },
                Pattern { toks: &["SystemTime"], show: "SystemTime" },
            ],
        },
        scope: Scope::Reachable,
        zones: &["crates/"],
        exempt: &[
            "crates/simverify/",
            "crates/experiments/",
            "crates/bench/",
            // Pool worker busy-time quarantine: lands in the dedicated
            // pool_metrics registry, excluded from determinism comparisons
            // (DESIGN.md §11).
            "crates/simcore/src/exec.rs",
        ],
        invariant_escape: false,
    },
    Rule {
        id: "SV007",
        summary: "ambient randomness reachable from a purity root; all randomness \
                  must flow from the seeded SplitMix64 plumbing",
        kind: RuleKind::Tokens {
            patterns: &[
                Pattern { toks: &["thread_rng"], show: "thread_rng" },
                Pattern { toks: &["from_entropy"], show: "from_entropy" },
                Pattern { toks: &["OsRng"], show: "OsRng" },
                Pattern { toks: &["getrandom"], show: "getrandom" },
            ],
        },
        scope: Scope::Reachable,
        zones: &["crates/"],
        exempt: &["crates/simverify/", "crates/experiments/", "crates/bench/"],
        invariant_escape: false,
    },
    Rule {
        id: "SV008",
        summary: "hash-ordered collection reachable from a purity root (extends \
                  SV002 beyond declared zones); use BTreeMap/BTreeSet",
        kind: RuleKind::Tokens {
            patterns: &[
                Pattern { toks: &["HashMap"], show: "HashMap" },
                Pattern { toks: &["HashSet"], show: "HashSet" },
            ],
        },
        scope: Scope::Reachable,
        zones: &["crates/"],
        exempt: &["crates/simverify/", "crates/experiments/", "crates/bench/"],
        invariant_escape: false,
    },
    Rule {
        id: "SV009",
        summary: "shared mutable state reachable from a purity root; node runs must \
                  share nothing (quarantines: executor pool, mpisim world(), telemetry)",
        kind: RuleKind::Tokens {
            patterns: &[
                Pattern { toks: &["static", "mut"], show: "static mut" },
                Pattern { toks: &["Mutex"], show: "Mutex" },
                Pattern { toks: &[".", "lock", "("], show: ".lock(" },
                Pattern { toks: &["RwLock"], show: "RwLock" },
                Pattern { toks: &["OnceLock"], show: "OnceLock" },
                Pattern { toks: &["AtomicUsize"], show: "AtomicUsize" },
                Pattern { toks: &["AtomicU64"], show: "AtomicU64" },
                Pattern { toks: &["AtomicU32"], show: "AtomicU32" },
                Pattern { toks: &["AtomicI64"], show: "AtomicI64" },
                Pattern { toks: &["AtomicBool"], show: "AtomicBool" },
            ],
        },
        scope: Scope::Reachable,
        zones: &["crates/"],
        exempt: &[
            "crates/simverify/",
            "crates/experiments/",
            "crates/bench/",
            // The executor pool's atomic work cursor and slot mutexes ARE
            // the ordered-merge machinery (DESIGN.md §11).
            "crates/simcore/src/exec.rs",
            // All mutex-guarded MPI state funnels through the documented
            // world() helper (DESIGN.md §9).
            "crates/mpisim/src/world.rs",
            // Monotone counters/gauges/histograms; snapshots render through
            // a BTreeMap and never feed back into decisions.
            "crates/telemetry/",
        ],
        invariant_escape: false,
    },
    Rule {
        id: "SV010",
        summary: "environment or filesystem read reachable from a purity root; \
                  config flows in through arguments, results flow out through returns",
        kind: RuleKind::Tokens {
            patterns: &[
                Pattern { toks: &["std", "::", "env"], show: "std::env" },
                Pattern { toks: &["std", "::", "fs"], show: "std::fs" },
                Pattern { toks: &["env", "::", "var"], show: "env::var" },
                Pattern { toks: &["fs", "::", "read"], show: "fs::read" },
                Pattern { toks: &["fs", "::", "write"], show: "fs::write" },
                Pattern { toks: &["File", "::", "open"], show: "File::open" },
                Pattern { toks: &["File", "::", "create"], show: "File::create" },
            ],
        },
        scope: Scope::Reachable,
        zones: &["crates/"],
        exempt: &[
            "crates/simverify/",
            "crates/experiments/",
            "crates/bench/",
            // Checkpoint durability quarantine: atomic save/rotate/load is
            // filesystem code by design and never reachable from a purity
            // root — the engine hands CheckpointStore plain bytes
            // (DESIGN.md §14).
            "crates/batchsim/src/checkpoint.rs",
        ],
        invariant_escape: false,
    },
    Rule {
        id: "SV011",
        summary: "float ordering in scheduling arithmetic reachable from a purity \
                  root; compare exact integer SimTime/SimDuration instead",
        kind: RuleKind::Tokens {
            patterns: &[
                Pattern { toks: &[".", "partial_cmp", "("], show: ".partial_cmp(" },
                Pattern { toks: &["EPS"], show: "EPS" },
                Pattern { toks: &["as_secs_f64", "(", ")", "<"], show: "as_secs_f64() <" },
                Pattern { toks: &["as_secs_f64", "(", ")", "<="], show: "as_secs_f64() <=" },
                Pattern { toks: &["as_secs_f64", "(", ")", ">"], show: "as_secs_f64() >" },
                Pattern { toks: &["as_secs_f64", "(", ")", ">="], show: "as_secs_f64() >=" },
                Pattern { toks: &["as_secs_f64", "(", ")", "=="], show: "as_secs_f64() ==" },
            ],
        },
        scope: Scope::Reachable,
        zones: &["crates/"],
        exempt: &["crates/simverify/", "crates/experiments/", "crates/bench/"],
        invariant_escape: false,
    },
    Rule {
        id: "SV012",
        summary: "unordered parallel reduction reachable from a purity root; \
                  results must merge in submission order through simcore::Pool",
        kind: RuleKind::Tokens {
            patterns: &[
                Pattern { toks: &["mpsc"], show: "mpsc" },
                Pattern { toks: &["sync_channel"], show: "sync_channel" },
                Pattern { toks: &["Receiver"], show: "Receiver" },
                Pattern { toks: &["crossbeam"], show: "crossbeam" },
                Pattern { toks: &["rayon"], show: "rayon" },
                Pattern { toks: &["par_iter"], show: "par_iter" },
                Pattern { toks: &["into_par_iter"], show: "into_par_iter" },
            ],
        },
        scope: Scope::Reachable,
        zones: &["crates/"],
        exempt: &[
            "crates/simverify/",
            "crates/experiments/",
            "crates/bench/",
            // The pool implements the ordered merge itself.
            "crates/simcore/src/exec.rs",
        ],
        invariant_escape: false,
    },
    Rule {
        id: "SV013",
        summary: "checksum-bypassing snapshot read; decode checkpoints through \
                  SnapshotReader::new so corruption is detected, not replayed",
        kind: RuleKind::Tokens {
            patterns: &[Pattern { toks: &["::", "new_unchecked"], show: "::new_unchecked" }],
        },
        scope: Scope::Zones,
        zones: &["crates/"],
        // The analyzer spells the pattern in its own table; the forensic
        // constructor's definition site lives in simcore::snapshot and is
        // `fn new_unchecked(`, which the `::`-prefixed pattern skips.
        exempt: &["crates/simverify/"],
        invariant_escape: false,
    },
    Rule {
        id: "SV014",
        summary: "unbounded per-job accumulation in streaming-stats code; fold \
                  into scalar sums/maxima/histograms, never a growable container",
        kind: RuleKind::Tokens {
            patterns: &[Pattern { toks: &[".", "push", "("], show: ".push(" }],
        },
        scope: Scope::Reachable,
        zones: &[
            "crates/batchsim/src/stats.rs",
            "crates/batchsim/src/fleet.rs",
            "crates/fleetsim/src/",
        ],
        exempt: &[],
        invariant_escape: true,
    },
];

/// One reported violation, rendered as `file:line: rule-id: message`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Repo-relative, forward-slash path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    pub rule: &'static str,
    /// The pattern rendering that matched (empty for structural rules).
    pub pattern: String,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}: {}", self.file, self.line, self.rule, self.message)
    }
}

fn in_zone(rule: &Rule, file: &str) -> bool {
    rule.zones.iter().any(|z| file.contains(z)) && !rule.exempt.iter().any(|z| file.contains(z))
}

/// Evaluate every rule over prepared files. `graph`/`reachable` drive the
/// [`Scope::Reachable`] rules; pass an empty graph to run zone rules only.
pub fn evaluate(
    files: &[PreparedFile<'_>],
    rules: &[Rule],
    graph: &Graph,
    reachable: &[bool],
    allow: &mut Allowlist,
    today: Date,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        let code = file.code_indices();
        // Reachable body ranges (raw token indices) in this file.
        let ranges: Vec<(usize, usize)> = graph
            .fns
            .iter()
            .enumerate()
            .filter(|(i, f)| f.file == fi && reachable.get(*i).copied().unwrap_or(false))
            .map(|(_, f)| f.body)
            .collect();
        for rule in rules.iter().filter(|r| in_zone(r, &file.path)) {
            match &rule.kind {
                RuleKind::Tokens { patterns } => {
                    for pat in *patterns {
                        scan_pattern(file, &code, rule, pat, &ranges, allow, today, &mut violations);
                    }
                }
                RuleKind::FieldsDocumented => {
                    fields_documented(file, rule, allow, today, &mut violations);
                }
            }
        }
    }
    violations.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.pattern).cmp(&(&b.file, b.line, b.rule, &b.pattern))
    });
    violations
}

#[allow(clippy::too_many_arguments)]
fn scan_pattern(
    file: &PreparedFile<'_>,
    code: &[usize],
    rule: &Rule,
    pat: &Pattern,
    reachable_ranges: &[(usize, usize)],
    allow: &mut Allowlist,
    today: Date,
    out: &mut Vec<Violation>,
) {
    let plen = pat.toks.len();
    if code.len() < plen {
        return;
    }
    for p in 0..=code.len() - plen {
        if (0..plen).any(|k| file.toks[code[p + k]].text != pat.toks[k]) {
            continue;
        }
        let raw = code[p];
        if rule.scope == Scope::Reachable
            && !reachable_ranges.iter().any(|&(s, e)| (s..=e).contains(&raw))
        {
            continue;
        }
        let line = file.toks[raw].line;
        if rule.invariant_escape && file.comment_near(line, INVARIANT_WINDOW, "INVARIANT") {
            continue;
        }
        let line_text = file.lines.get(line as usize - 1).copied().unwrap_or("");
        if allow.permits(rule.id, &file.path, line_text, today) {
            continue;
        }
        out.push(Violation {
            file: file.path.clone(),
            line: line as usize,
            rule: rule.id,
            pattern: pat.show.to_string(),
            message: format!("`{}`: {}", pat.show, rule.summary),
        });
    }
}

/// A `pub` struct-field line (the only thing SV005 inspects): not a
/// function, constant or tuple-struct declaration.
fn is_pub_field(trimmed: &str) -> bool {
    trimmed.starts_with("pub ")
        && trimmed.contains(':')
        && trimmed.ends_with(',')
        && !trimmed.contains("fn ")
        && !trimmed.contains("const ")
        && !trimmed.contains('(')
}

/// Whether the field line at `idx` has a `///` doc comment above it,
/// looking through any `#[...]` attribute lines.
fn field_is_documented(lines: &[&str], idx: usize) -> bool {
    for j in (0..idx).rev() {
        let p = lines[j].trim_start();
        if p.starts_with("#[") {
            continue;
        }
        return p.starts_with("///");
    }
    false
}

fn fields_documented(
    file: &PreparedFile<'_>,
    rule: &Rule,
    allow: &mut Allowlist,
    today: Date,
    out: &mut Vec<Violation>,
) {
    let mut in_tests = false;
    for (i, raw) in file.lines.iter().enumerate() {
        let trimmed = raw.trim_start();
        if trimmed.starts_with("#[cfg(test)]") {
            in_tests = true;
        }
        if in_tests || trimmed.starts_with("//") {
            continue;
        }
        if is_pub_field(trimmed)
            && !field_is_documented(&file.lines, i)
            && !allow.permits(rule.id, &file.path, raw, today)
        {
            out.push(Violation {
                file: file.path.clone(),
                line: i + 1,
                rule: rule.id,
                pattern: String::new(),
                message: format!("`{}`: {}", trimmed.trim_end_matches(','), rule.summary),
            });
        }
    }
}
