//! The justified allowlist: `simverify.allow` at the repository root.
//!
//! Every entry must carry a *reason* and an *expiry date* — an exception is
//! a decision someone made, and decisions rot. The format is one entry per
//! line (`#` comments and blank lines ignored):
//!
//! ```text
//! SV009 path=crates/schedsim/src/trace.rs frag=Mutex expires=2027-08-31 reason=append-only SharedSink; one writer per kernel
//! ```
//!
//! * `path=` — repo-relative path substring the entry covers;
//! * `frag=` — substring the flagged *source line* must contain;
//! * `expires=YYYY-MM-DD` — after this date the entry stops suppressing
//!   anything and the lint run **fails** until it is re-justified or the
//!   code is fixed;
//! * `reason=` — free text to end of line; why the exception is sound.
//!
//! Unmatched (stale) entries also fail the run: an allowlist line that
//! suppresses nothing is either dead weight or a typo hiding a real
//! finding, and both should be loud.

/// A civil date as days since the Unix epoch, for expiry comparisons.
/// Construction parses `YYYY-MM-DD`; `today` reads the system clock (the
/// analyzer is host tooling, outside the simulation determinism boundary).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Date(pub i64);

impl Date {
    /// The far future: nothing expires. Used by fixture helpers that test
    /// rule matching rather than expiry.
    pub const MAX: Date = Date(i64::MAX);

    /// Parse `YYYY-MM-DD`.
    pub fn parse(s: &str) -> Option<Date> {
        let mut it = s.split('-');
        let y: i64 = it.next()?.parse().ok()?;
        let m: u32 = it.next()?.parse().ok()?;
        let d: u32 = it.next()?.parse().ok()?;
        if it.next().is_some() || !(1..=12).contains(&m) || !(1..=31).contains(&d) {
            return None;
        }
        Some(Date(days_from_civil(y, m, d)))
    }

    /// Today per the host clock, at UTC day granularity.
    pub fn today() -> Date {
        let secs = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        Date((secs / 86_400) as i64)
    }
}

/// Howard Hinnant's `days_from_civil`: days since 1970-01-01.
fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = i64::from((m + 9) % 12);
    let doy = (153 * mp + 2) / 5 + i64::from(d) - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe - 719_468
}

/// One parsed allowlist entry.
#[derive(Clone, Debug)]
pub struct AllowEntry {
    pub rule: String,
    pub path: String,
    pub fragment: String,
    pub expires: Date,
    /// The literal `expires=` text, for report rendering.
    pub expires_text: String,
    pub reason: String,
    /// 1-based line in `simverify.allow`, for stale-entry reporting.
    pub source_line: usize,
    pub used: bool,
}

impl AllowEntry {
    pub fn is_expired(&self, today: Date) -> bool {
        self.expires < today
    }
}

/// The parsed allowlist.
#[derive(Debug, Default)]
pub struct Allowlist {
    pub entries: Vec<AllowEntry>,
}

impl Allowlist {
    pub fn empty() -> Allowlist {
        Allowlist::default()
    }

    /// Parse the justified format. Every field is mandatory; a line that
    /// parses as the pre-§13 three-column format is rejected with a hint.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |what: &str| {
                format!(
                    "simverify.allow:{}: {what}; expected `RULE path=<substr> frag=<substr> \
                     expires=YYYY-MM-DD reason=<free text>`",
                    i + 1
                )
            };
            let (rule, rest) = line.split_once(char::is_whitespace).ok_or_else(|| err("missing fields"))?;
            let field = |key: &str| -> Option<&str> {
                let tail = rest.split_once(key)?.1;
                Some(if key == "reason=" {
                    tail.trim()
                } else {
                    tail.split_whitespace().next().unwrap_or("")
                })
            };
            let path = field("path=").filter(|s| !s.is_empty()).ok_or_else(|| err("missing path="))?;
            let fragment = field("frag=").filter(|s| !s.is_empty()).ok_or_else(|| err("missing frag="))?;
            let expires_text =
                field("expires=").filter(|s| !s.is_empty()).ok_or_else(|| err("missing expires="))?;
            let expires = Date::parse(expires_text)
                .ok_or_else(|| err("expires= is not a valid YYYY-MM-DD date"))?;
            let reason =
                field("reason=").filter(|s| !s.is_empty()).ok_or_else(|| err("missing reason="))?;
            entries.push(AllowEntry {
                rule: rule.to_string(),
                path: path.to_string(),
                fragment: fragment.to_string(),
                expires,
                expires_text: expires_text.to_string(),
                reason: reason.to_string(),
                source_line: i + 1,
                used: false,
            });
        }
        Ok(Allowlist { entries })
    }

    /// Whether a live (unexpired) entry covers this `(rule, file, line)`
    /// triple; marks it used. Expired entries never suppress.
    pub fn permits(&mut self, rule: &str, file: &str, line_text: &str, today: Date) -> bool {
        let mut hit = false;
        for e in &mut self.entries {
            if e.rule == rule
                && file.contains(&e.path)
                && line_text.contains(&e.fragment)
                && !e.is_expired(today)
            {
                e.used = true;
                hit = true;
            }
        }
        hit
    }

    /// Entries that suppressed nothing and are not expired (expired ones
    /// are reported separately, and more severely).
    pub fn unused(&self, today: Date) -> Vec<&AllowEntry> {
        self.entries.iter().filter(|e| !e.used && !e.is_expired(today)).collect()
    }

    /// Entries past their expiry date — each one fails the run.
    pub fn expired(&self, today: Date) -> Vec<&AllowEntry> {
        self.entries.iter().filter(|e| e.is_expired(today)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_justified_format() {
        let a = Allowlist::parse(
            "# comment\nSV009 path=crates/x.rs frag=Mutex expires=2030-01-01 reason=documented handle\n",
        )
        .expect("valid");
        assert_eq!(a.entries.len(), 1);
        let e = &a.entries[0];
        assert_eq!((e.rule.as_str(), e.path.as_str(), e.fragment.as_str()), ("SV009", "crates/x.rs", "Mutex"));
        assert_eq!(e.reason, "documented handle");
        assert!(!e.is_expired(Date::parse("2029-12-31").unwrap()));
        assert!(e.is_expired(Date::parse("2030-01-02").unwrap()));
    }

    #[test]
    fn rejects_the_old_three_column_format_and_partial_lines() {
        assert!(Allowlist::parse("SV001 crates/x.rs Instant::now\n").is_err());
        assert!(Allowlist::parse("SV001 path=x frag=y reason=z\n").is_err(), "missing expires");
        assert!(Allowlist::parse("SV001 path=x frag=y expires=2030-01-01\n").is_err(), "missing reason");
        assert!(Allowlist::parse("SV001 path=x frag=y expires=never reason=z\n").is_err());
    }

    #[test]
    fn expired_entries_do_not_suppress() {
        let mut a = Allowlist::parse(
            "SV001 path=crates/x.rs frag=Instant expires=2020-01-01 reason=long gone\n",
        )
        .unwrap();
        let today = Date::parse("2026-08-09").unwrap();
        assert!(!a.permits("SV001", "crates/x.rs", "Instant::now()", today));
        assert_eq!(a.expired(today).len(), 1);
        assert!(a.unused(today).is_empty(), "expired is reported as expired, not stale");
    }

    #[test]
    fn civil_date_math_is_sane() {
        assert_eq!(Date::parse("1970-01-01").unwrap().0, 0);
        assert_eq!(Date::parse("1970-01-02").unwrap().0, 1);
        assert!(Date::parse("2026-08-09").unwrap() < Date::parse("2027-08-31").unwrap());
        assert!(Date::parse("2026-13-01").is_none());
    }
}
