//! Architectural lint pass: a fast, dependency-free scanner over the
//! workspace source tree.
//!
//! Rules are data-driven: each [`Rule`] names the path *zones* it applies
//! to, the zones it exempts, and what it forbids. Two escape hatches exist,
//! in increasing order of ceremony:
//!
//! * an `INVARIANT:` comment on or just above the flagged line (only for
//!   rules with `invariant_escape`) — for panics whose impossibility the
//!   code can argue locally;
//! * an entry in `simverify.allow` at the repository root — for the rare
//!   structural exception (e.g. the pick-latency wall-clock metric).
//!
//! Output format is `file:line: rule-id: message`, one violation per line,
//! and the binary exits nonzero when any violation remains.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// What a rule forbids.
pub enum RuleKind {
    /// Any line containing one of these substrings violates the rule.
    ForbiddenPattern { patterns: &'static [&'static str] },
    /// Every `pub` struct field must carry a `///` doc comment.
    FieldsDocumented,
}

/// One architectural rule.
pub struct Rule {
    pub id: &'static str,
    pub summary: &'static str,
    pub kind: RuleKind,
    /// Path substrings (forward-slash, repo-relative) the rule applies to.
    pub zones: &'static [&'static str],
    /// Path substrings excluded even when a zone matches.
    pub exempt: &'static [&'static str],
    /// Whether an `INVARIANT:` comment on the line or within
    /// [`INVARIANT_WINDOW`] lines above it silences the rule.
    pub invariant_escape: bool,
}

/// How far above a flagged line an `INVARIANT` marker is honoured.
pub const INVARIANT_WINDOW: usize = 5;

/// The rule table. Zones mirror the determinism boundary drawn in
/// DESIGN.md: everything that feeds scheduler decisions or the trace must
/// be a pure function of `(config, seed)`.
pub const RULES: &[Rule] = &[
    Rule {
        id: "SV001",
        summary: "wall-clock read in a deterministic simulation crate",
        kind: RuleKind::ForbiddenPattern { patterns: &["Instant::now", "SystemTime"] },
        zones: &[
            "crates/simcore/src/",
            "crates/schedsim/src/",
            "crates/power5/src/",
            "crates/mpisim/src/",
            "crates/core/src/",
            "crates/faultsim/src/",
            "crates/batchsim/src/",
        ],
        exempt: &[],
        invariant_escape: false,
    },
    Rule {
        id: "SV002",
        summary: "iteration-order-sensitive collection in a scheduler-decision or \
                  trace-emitting path; use BTreeMap/BTreeSet",
        kind: RuleKind::ForbiddenPattern { patterns: &["HashMap", "HashSet"] },
        zones: &[
            "crates/schedsim/src/kernel.rs",
            "crates/schedsim/src/classes/",
            "crates/schedsim/src/program.rs",
            "crates/schedsim/src/balance.rs",
            "crates/schedsim/src/balancer.rs",
            "crates/schedsim/src/policies/",
            "crates/mpisim/src/collective.rs",
            "crates/faultsim/src/",
            "crates/batchsim/src/",
        ],
        exempt: &[],
        invariant_escape: false,
    },
    Rule {
        id: "SV003",
        summary: "panic in a kernel hot path; propagate SchedError or document the \
                  invariant with an INVARIANT: comment",
        kind: RuleKind::ForbiddenPattern { patterns: &["panic!", ".unwrap()", ".expect("] },
        zones: &[
            "crates/schedsim/src/kernel.rs",
            "crates/schedsim/src/classes/",
            "crates/schedsim/src/balance.rs",
            "crates/schedsim/src/balancer.rs",
            "crates/schedsim/src/builder.rs",
            "crates/schedsim/src/policies/",
            "crates/mpisim/src/",
            "crates/faultsim/src/",
            "crates/batchsim/src/",
        ],
        exempt: &[],
        invariant_escape: true,
    },
    Rule {
        id: "SV004",
        summary: "deprecated shim; build with schedsim::KernelBuilder and attach \
                  sinks with Kernel::observe",
        kind: RuleKind::ForbiddenPattern {
            patterns: &[".set_trace(", ".take_trace(", "HpcKernelBuilder"],
        },
        zones: &["crates/"],
        // The trace shims are gone from the kernel (all callers migrated to
        // `Kernel::observe`) and every internal caller builds through
        // `schedsim::KernelBuilder`; only the hpcsched facade may still
        // spell the deprecated builder (it defines the delegating shim),
        // and only simverify itself may spell the patterns, in its own
        // rule table and fixtures.
        exempt: &[
            "crates/simverify/",
            "crates/core/src/runtime.rs",
            "crates/core/src/lib.rs",
        ],
        invariant_escape: false,
    },
    Rule {
        id: "SV005",
        summary: "tunable field without a doc comment",
        kind: RuleKind::FieldsDocumented,
        zones: &["crates/schedsim/src/policies/tunables.rs"],
        exempt: &[],
        invariant_escape: false,
    },
];

/// One reported violation, rendered as `file:line: rule-id: message`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Repo-relative, forward-slash path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}: {}", self.file, self.line, self.rule, self.message)
    }
}

/// One `simverify.allow` entry: `rule-id path-substring line-substring`.
#[derive(Clone, Debug)]
pub struct AllowEntry {
    pub rule: String,
    pub path: String,
    pub fragment: String,
    /// Which allowlist line this came from (for unused-entry reporting).
    pub source_line: usize,
    pub used: bool,
}

/// The parsed per-line allowlist.
#[derive(Debug, Default)]
pub struct Allowlist {
    pub entries: Vec<AllowEntry>,
}

impl Allowlist {
    pub fn empty() -> Allowlist {
        Allowlist::default()
    }

    /// Parse the allowlist format: one entry per line, `#` comments and
    /// blank lines ignored. Fields are whitespace-separated; the third
    /// field (the line fragment) runs to end of line.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, char::is_whitespace);
            let rule = parts.next().unwrap_or("").to_string();
            let path = parts.next().unwrap_or("").to_string();
            let fragment = parts.next().unwrap_or("").trim().to_string();
            if rule.is_empty() || path.is_empty() || fragment.is_empty() {
                return Err(format!(
                    "simverify.allow:{}: expected `rule-id path-substring line-substring`",
                    i + 1
                ));
            }
            entries.push(AllowEntry { rule, path, fragment, source_line: i + 1, used: false });
        }
        Ok(Allowlist { entries })
    }

    /// Whether an entry covers this (rule, file, line) triple; marks the
    /// entry used so stale entries can be reported.
    fn permits(&mut self, rule: &str, file: &str, line_text: &str) -> bool {
        let mut hit = false;
        for e in &mut self.entries {
            if e.rule == rule && file.contains(&e.path) && line_text.contains(&e.fragment) {
                e.used = true;
                hit = true;
            }
        }
        hit
    }

    /// Entries that never matched anything, for end-of-run warnings.
    pub fn unused(&self) -> Vec<&AllowEntry> {
        self.entries.iter().filter(|e| !e.used).collect()
    }
}

fn in_zone(rule: &Rule, file: &str) -> bool {
    rule.zones.iter().any(|z| file.contains(z)) && !rule.exempt.iter().any(|z| file.contains(z))
}

fn has_invariant_near(lines: &[&str], idx: usize) -> bool {
    let lo = idx.saturating_sub(INVARIANT_WINDOW);
    lines[lo..=idx].iter().any(|l| l.contains("INVARIANT"))
}

/// A `pub` struct-field line (the only thing SV005 inspects): not a
/// function, constant or tuple-struct declaration.
fn is_pub_field(trimmed: &str) -> bool {
    trimmed.starts_with("pub ")
        && trimmed.contains(':')
        && trimmed.ends_with(',')
        && !trimmed.contains("fn ")
        && !trimmed.contains("const ")
        && !trimmed.contains('(')
}

/// Whether the field line at `idx` has a `///` doc comment above it,
/// looking through any `#[...]` attribute lines.
fn field_is_documented(lines: &[&str], idx: usize) -> bool {
    for j in (0..idx).rev() {
        let p = lines[j].trim_start();
        if p.starts_with("#[") {
            continue;
        }
        return p.starts_with("///");
    }
    false
}

/// Lint one source file (already read into memory, so fixture tests can
/// feed synthetic snippets). `file` must be the repo-relative,
/// forward-slash path — zone matching runs against it.
pub fn lint_source(
    file: &str,
    source: &str,
    rules: &[Rule],
    allow: &mut Allowlist,
) -> Vec<Violation> {
    let applicable: Vec<&Rule> = rules.iter().filter(|r| in_zone(r, file)).collect();
    if applicable.is_empty() {
        return Vec::new();
    }
    let lines: Vec<&str> = source.lines().collect();
    let mut violations = Vec::new();
    let mut in_tests = false;
    for (i, raw) in lines.iter().enumerate() {
        let trimmed = raw.trim_start();
        // Test modules sit at the end of each file in this codebase; rules
        // govern shipping code only.
        if trimmed.starts_with("#[cfg(test)]") {
            in_tests = true;
        }
        if in_tests || trimmed.starts_with("//") {
            continue;
        }
        for rule in &applicable {
            match &rule.kind {
                RuleKind::ForbiddenPattern { patterns } => {
                    for pat in *patterns {
                        if !raw.contains(pat) {
                            continue;
                        }
                        if rule.invariant_escape && has_invariant_near(&lines, i) {
                            continue;
                        }
                        if allow.permits(rule.id, file, raw) {
                            continue;
                        }
                        violations.push(Violation {
                            file: file.to_string(),
                            line: i + 1,
                            rule: rule.id,
                            message: format!("`{pat}`: {}", rule.summary),
                        });
                    }
                }
                RuleKind::FieldsDocumented => {
                    if is_pub_field(trimmed)
                        && !field_is_documented(&lines, i)
                        && !allow.permits(rule.id, file, raw)
                    {
                        violations.push(Violation {
                            file: file.to_string(),
                            line: i + 1,
                            rule: rule.id,
                            message: format!(
                                "`{}`: {}",
                                trimmed.trim_end_matches(','),
                                rule.summary
                            ),
                        });
                    }
                }
            }
        }
    }
    violations
}

/// Result of a whole-workspace lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    pub violations: Vec<Violation>,
    pub files_scanned: usize,
    /// Stale `simverify.allow` entries, as `line: text` descriptions.
    pub unused_allow: Vec<String>,
}

impl LintReport {
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Recursively collect `.rs` files under `dir`, skipping build output.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            if entry.file_name() == "target" {
                continue;
            }
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint every `.rs` file under `<root>/crates` against [`RULES`], applying
/// `<root>/simverify.allow` when present.
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let crates = root.join("crates");
    if !crates.is_dir() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("{} is not a workspace root (no crates/ directory)", root.display()),
        ));
    }
    let mut allow = match fs::read_to_string(root.join("simverify.allow")) {
        Ok(text) => Allowlist::parse(&text).map_err(io::Error::other)?,
        Err(e) if e.kind() == io::ErrorKind::NotFound => Allowlist::empty(),
        Err(e) => return Err(e),
    };
    let mut files = Vec::new();
    collect_rs(&crates, &mut files)?;
    // Deterministic scan order regardless of directory enumeration order.
    let mut rel: Vec<(String, PathBuf)> = files
        .into_iter()
        .map(|p| {
            let r = p
                .strip_prefix(root)
                .unwrap_or(&p)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            (r, p)
        })
        .collect();
    rel.sort();

    let mut report = LintReport::default();
    for (rel_path, path) in rel {
        let source = fs::read_to_string(&path)?;
        report.violations.extend(lint_source(&rel_path, &source, RULES, &mut allow));
        report.files_scanned += 1;
    }
    report.unused_allow = allow
        .unused()
        .into_iter()
        .map(|e| format!("{}: {} {} {}", e.source_line, e.rule, e.path, e.fragment))
        .collect();
    Ok(report)
}
