//! Workspace lint driver.
//!
//! This module is the orchestration layer of the static-analysis pass
//! (DESIGN.md §13): it loads sources, prepares token streams
//! ([`crate::lex`]), builds the call graph and reachable set
//! ([`crate::graph`]), evaluates the rule catalog ([`crate::rules`])
//! under the justified allowlist ([`crate::rules::allow`]), and packages
//! everything into a [`LintReport`] that renders either human-readable
//! (`file:line: rule: message`) or as stable JSON
//! ([`crate::rules::report`]).
//!
//! Scan scope is *shipping code*: every `.rs` under `<root>/crates`,
//! excluding `target/`, `tests/`, `benches/`, `examples/` and `fixtures/`
//! directories — test-only code is additionally masked at token level via
//! `#[cfg(test)]`/`#[test]` extents, so both whole-file and inline test
//! code are outside the rules.

pub use crate::rules::allow::{AllowEntry, Allowlist, Date};
pub use crate::rules::{Rule, RuleKind, Scope, Violation, INVARIANT_WINDOW, RULES};

use crate::graph::Graph;
use crate::lex::PreparedFile;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One declared purity root, for the report (proof that coverage exists:
/// a report with zero roots means the reachability rules checked nothing).
#[derive(Clone, Debug)]
pub struct RootInfo {
    pub file: String,
    pub name: String,
    pub line: u32,
}

/// Allowlist entry with its post-run status, for the report.
#[derive(Clone, Debug)]
pub struct AllowStatus {
    pub rule: String,
    pub path: String,
    pub fragment: String,
    pub expires_text: String,
    pub reason: String,
    /// `"used"`, `"unused"` (stale — fails the run) or `"expired"`
    /// (fails the run).
    pub status: &'static str,
    pub source_line: usize,
}

/// The outcome of a lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    pub violations: Vec<Violation>,
    pub files_scanned: usize,
    /// Functions extracted by the graph pass.
    pub total_fns: usize,
    /// Of those, reachable from a purity root.
    pub reachable_fns: usize,
    /// Declared purity roots, sorted by (file, line).
    pub roots: Vec<RootInfo>,
    /// Every allowlist entry with its status, in file order.
    pub allow_entries: Vec<AllowStatus>,
    /// Rendered descriptions of stale (matched-nothing) entries.
    pub unused_allow: Vec<String>,
    /// Rendered descriptions of expired entries.
    pub expired_allow: Vec<String>,
}

impl LintReport {
    /// No rule violations (allowlist hygiene not considered).
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Clean *and* the allowlist has no stale or expired entries — the
    /// condition CI gates on.
    pub fn is_passing(&self) -> bool {
        self.is_clean() && self.unused_allow.is_empty() && self.expired_allow.is_empty()
    }

    /// Render as stable JSON (see [`crate::rules::report`]).
    pub fn to_json(&self) -> String {
        crate::rules::report::render_json(self)
    }
}

/// Run the full pass over in-memory sources: `(repo-relative path, text)`
/// pairs. The caller supplies `today` so fixtures can pin the date.
pub fn lint_sources(sources: &[(String, String)], mut allow: Allowlist, today: Date) -> LintReport {
    let mut ordered: Vec<&(String, String)> = sources.iter().collect();
    ordered.sort_by(|a, b| a.0.cmp(&b.0));
    let files: Vec<PreparedFile<'_>> =
        ordered.iter().map(|(p, s)| PreparedFile::new(p.clone(), s)).collect();

    let graph = Graph::build(&files);
    let reachable = graph.reachable();
    let violations = crate::rules::evaluate(&files, RULES, &graph, &reachable, &mut allow, today);

    let mut roots: Vec<RootInfo> = graph
        .roots()
        .into_iter()
        .map(|i| {
            let f = &graph.fns[i];
            RootInfo { file: files[f.file].path.clone(), name: f.name.clone(), line: f.line }
        })
        .collect();
    roots.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));

    let describe = |e: &AllowEntry| {
        format!(
            "simverify.allow:{}: {} path={} frag={} expires={}",
            e.source_line, e.rule, e.path, e.fragment, e.expires_text
        )
    };
    let unused_allow = allow.unused(today).iter().map(|e| describe(e)).collect();
    let expired_allow = allow.expired(today).iter().map(|e| describe(e)).collect();
    let allow_entries = allow
        .entries
        .iter()
        .map(|e| AllowStatus {
            rule: e.rule.clone(),
            path: e.path.clone(),
            fragment: e.fragment.clone(),
            expires_text: e.expires_text.clone(),
            reason: e.reason.clone(),
            status: if e.is_expired(today) {
                "expired"
            } else if e.used {
                "used"
            } else {
                "unused"
            },
            source_line: e.source_line,
        })
        .collect();

    LintReport {
        violations,
        files_scanned: files.len(),
        total_fns: graph.fns.len(),
        reachable_fns: reachable.iter().filter(|&&r| r).count(),
        roots,
        allow_entries,
        unused_allow,
        expired_allow,
    }
}

/// Lint a workspace rooted at `root` with a caller-pinned date (fixtures
/// and expiry tests). Reads `<root>/simverify.allow` when present.
pub fn lint_workspace_at(root: &Path, today: Date) -> io::Result<LintReport> {
    let allow = match fs::read_to_string(root.join("simverify.allow")) {
        Ok(text) => {
            Allowlist::parse(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => Allowlist::empty(),
        Err(e) => return Err(e),
    };

    let crates_dir = root.join("crates");
    let mut paths = Vec::new();
    collect_rs(&crates_dir, &mut paths)?;
    paths.sort();

    let mut sources = Vec::with_capacity(paths.len());
    for p in &paths {
        let rel = p.strip_prefix(root).unwrap_or(p).to_string_lossy().replace('\\', "/");
        sources.push((rel, fs::read_to_string(p)?));
    }
    Ok(lint_sources(&sources, allow, today))
}

/// Lint a workspace rooted at `root`, with `today` read from the host
/// clock (the analyzer is host tooling; allowlist expiry is wall-calendar
/// by design).
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    lint_workspace_at(root, Date::today())
}

/// Compatibility shim for single-snippet tests: run the pass over one
/// file. Expiry is evaluated at the epoch, so any syntactically valid
/// `expires=` date is live.
pub fn lint_source(file: &str, src: &str, rules: &[Rule], allow: &mut Allowlist) -> Vec<Violation> {
    let files = [PreparedFile::new(file, src)];
    let graph = Graph::build(&files);
    let reachable = graph.reachable();
    crate::rules::evaluate(&files, rules, &graph, &reachable, allow, Date(0))
}

/// Directories never scanned: build output, fixture mini-workspaces, and
/// test-only trees (integration tests are exercised by `cargo test`, not
/// governed by the shipping-code architecture rules).
const SKIP_DIRS: [&str; 5] = ["target", "fixtures", "tests", "benches", "examples"];

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.exists() {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                collect_rs(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}
