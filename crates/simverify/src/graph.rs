//! Conservative module-graph and call-edge approximation over the token
//! streams, with reachability from the workspace's declared purity roots.
//!
//! The parallel-executor contract (DESIGN.md §11) says node-run and
//! balancer code must be a pure, deterministically-ordered function of
//! `(seed, inputs)`. The *pure zone* is therefore not a fixed path list but
//! "everything reachable from the entry points the pool and the kernel
//! call". This pass approximates that set:
//!
//! * **Function extraction** — every `fn` item outside `#[cfg(test)]`,
//!   with its body token range and the `impl <Trait> for` context it sits
//!   in (one level of trait attribution, which is all the rules need).
//! * **Roots** — functions annotated with a `PURITY-ROOT:` comment (line
//!   or doc, within [`MARKER_WINDOW`] lines above the `fn`), plus every
//!   method of an `impl Balancer for ...` block ([`ROOT_TRAITS`]) — the
//!   policy zoo is pure by construction of the trait contract.
//! * **Call edges** — inside a body, `name(` and `.name(` call sites edge
//!   to *every* function of that name in the workspace, with `use ... as`
//!   aliases expanded. This is deliberately name-based and conservative:
//!   it over-approximates trait-method dispatch (a call to `.on_sample()`
//!   reaches every `on_sample` impl) and ignores visibility, which is the
//!   safe direction for a purity analysis — code that *might* run under a
//!   root is held to the root's rules.
//!
//! What it knowingly misses (documented approximation, not a bug): calls
//! through function pointers/closures stored in data structures, turbofish
//! call sites (`f::<T>()`), and macro-generated code. The zone-based rules
//! (SV001–SV005) stay in force underneath as the coarse net.

use crate::lex::PreparedFile;
use std::collections::{BTreeMap, BTreeSet};

/// Comment marker declaring a function (or whole `impl` block) a purity
/// root. See DESIGN.md §13 for annotation guidance.
pub const ROOT_MARKER: &str = "PURITY-ROOT";

/// How many lines above a `fn`/`impl` keyword a marker comment is honoured
/// (attributes and doc lines may sit in between).
pub const MARKER_WINDOW: u32 = 3;

/// Traits whose `impl` methods are purity roots without per-fn markers.
pub const ROOT_TRAITS: &[&str] = &["Balancer"];

/// One extracted function.
#[derive(Debug)]
pub struct FnNode {
    /// Index into the file list the graph was built from.
    pub file: usize,
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Raw token-index range of the body, `{` and `}` inclusive.
    pub body: (usize, usize),
    /// Marked with [`ROOT_MARKER`] (directly or via its `impl` block).
    pub marked_root: bool,
    /// Trait name when the fn sits in an `impl Trait for Type` block.
    pub trait_ctx: Option<String>,
    /// Callee names referenced from the body (aliases expanded).
    pub calls: BTreeSet<String>,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct Graph {
    pub fns: Vec<FnNode>,
    by_name: BTreeMap<String, Vec<usize>>,
}

impl Graph {
    /// Extract functions and call edges from every prepared file.
    pub fn build(files: &[PreparedFile<'_>]) -> Graph {
        let mut fns = Vec::new();
        for (fi, file) in files.iter().enumerate() {
            extract_file(fi, file, &mut fns);
        }
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(i);
        }
        Graph { fns, by_name }
    }

    /// Indices of root functions: marker-annotated, or methods of a
    /// [`ROOT_TRAITS`] impl.
    pub fn roots(&self) -> Vec<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                f.marked_root
                    || f.trait_ctx.as_deref().is_some_and(|t| ROOT_TRAITS.contains(&t))
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// `reachable[i]` — function `i` is a root or transitively callable
    /// from one, under the name-based edge approximation.
    pub fn reachable(&self) -> Vec<bool> {
        let mut reach = vec![false; self.fns.len()];
        let mut work: Vec<usize> = self.roots();
        for &r in &work {
            reach[r] = true;
        }
        while let Some(i) = work.pop() {
            for callee in &self.fns[i].calls {
                if let Some(targets) = self.by_name.get(callee) {
                    for &t in targets {
                        if !reach[t] {
                            reach[t] = true;
                            work.push(t);
                        }
                    }
                }
            }
        }
        reach
    }
}

/// Parse `use` declarations in a file's code tokens into an
/// `alias -> original` map (`use path::to::real as alias;`).
fn alias_map(file: &PreparedFile<'_>, code: &[usize]) -> BTreeMap<String, String> {
    let mut aliases = BTreeMap::new();
    let mut ci = 0;
    while ci < code.len() {
        if file.toks[code[ci]].text != "use" {
            ci += 1;
            continue;
        }
        // Collect to the terminating `;`, tracking `orig as alias` pairs
        // (group imports `{a as b, c as d}` included — `as` always applies
        // to the ident right before it).
        let mut prev = "";
        let mut cj = ci + 1;
        while cj < code.len() && file.toks[code[cj]].text != ";" {
            let t = file.toks[code[cj]].text;
            if prev == "as" {
                // `t` is the alias; the original is the ident before `as`.
                if let Some(orig) = code[..cj]
                    .iter()
                    .rev()
                    .skip(1) // the `as` itself
                    .map(|&ti| file.toks[ti].text)
                    .find(|s| s.chars().next().is_some_and(|c| c.is_alphanumeric() || c == '_'))
                {
                    aliases.insert(t.to_string(), orig.to_string());
                }
            }
            prev = t;
            cj += 1;
        }
        ci = cj + 1;
    }
    aliases
}

/// Extract every fn in `file` into `out`.
fn extract_file(fi: usize, file: &PreparedFile<'_>, out: &mut Vec<FnNode>) {
    let code = file.code_indices();
    let aliases = alias_map(file, &code);

    // Marker comments attach to the *next* `fn`/`impl` item (within the
    // window) and are consumed by it — a marker must not bleed onto later
    // unannotated siblings. Items arrive in line order below, so greedy
    // consumption is exact.
    let mut markers: Vec<(u32, bool)> = file
        .comments
        .iter()
        .filter(|(_, text)| text.contains(ROOT_MARKER))
        .map(|&(line, _)| (line, false))
        .collect();
    let mut take_marker = |item_line: u32| -> bool {
        let lo = item_line.saturating_sub(MARKER_WINDOW);
        for (line, used) in markers.iter_mut() {
            if !*used && (lo..=item_line).contains(line) {
                *used = true;
                return true;
            }
        }
        false
    };

    // Impl-block context stack: (brace depth inside the block, trait name
    // if any, block carries a root marker).
    let mut impl_stack: Vec<(i64, Option<String>, bool)> = Vec::new();
    let mut depth: i64 = 0;

    let mut ci = 0usize;
    while ci < code.len() {
        let ti = code[ci];
        let text = file.toks[ti].text;
        match text {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                while impl_stack.last().is_some_and(|&(d, _, _)| depth < d) {
                    impl_stack.pop();
                }
            }
            "impl" => {
                // Header: skip generics, read the path up to `for` or `{`.
                let line = file.toks[ti].line;
                let marked = take_marker(line);
                let mut angle = 0i64;
                let mut path_idents: Vec<&str> = Vec::new();
                let mut trait_name = None;
                let mut cj = ci + 1;
                while cj < code.len() {
                    let t = file.toks[code[cj]].text;
                    match t {
                        "<" => angle += 1,
                        ">" => angle -= 1,
                        "{" | ";" => break,
                        "for" if angle == 0 => {
                            trait_name = path_idents.last().map(|s| s.to_string());
                            path_idents.clear();
                        }
                        _ if angle == 0
                            && t.chars().next().is_some_and(|c| c.is_alphabetic() || c == '_') =>
                        {
                            path_idents.push(t);
                        }
                        _ => {}
                    }
                    cj += 1;
                }
                if cj < code.len() && file.toks[code[cj]].text == "{" {
                    depth += 1;
                    impl_stack.push((depth, trait_name, marked));
                    ci = cj + 1;
                    continue;
                }
                ci = cj + 1;
                continue;
            }
            "fn" => {
                let line = file.toks[ti].line;
                let name = code[ci + 1..]
                    .iter()
                    .map(|&t| &file.toks[t])
                    .find(|t| t.kind == crate::lex::TokKind::Ident)
                    .map(|t| t.text.to_string())
                    .unwrap_or_default();
                // Find the body `{` (or `;` for a bodyless trait method) at
                // paren depth 0.
                let mut paren = 0i64;
                let mut angle_guard = 0i64;
                let mut cj = ci + 1;
                let mut body_open = None;
                while cj < code.len() {
                    match file.toks[code[cj]].text {
                        "(" | "[" => paren += 1,
                        ")" | "]" => paren -= 1,
                        "<" => angle_guard += 1,
                        ">" => angle_guard -= 1,
                        "{" if paren == 0 => {
                            body_open = Some(cj);
                            break;
                        }
                        ";" if paren == 0 && angle_guard <= 0 => break,
                        _ => {}
                    }
                    cj += 1;
                }
                let Some(open) = body_open else {
                    ci = cj + 1;
                    continue;
                };
                let (impl_trait, impl_marked) = impl_stack
                    .last()
                    .map(|(_, t, m)| (t.clone(), *m))
                    .unwrap_or((None, false));
                let marked = take_marker(line) || impl_marked;
                // Match the body braces to find the close.
                let mut b = 0i64;
                let mut ck = open;
                while ck < code.len() {
                    match file.toks[code[ck]].text {
                        "{" => b += 1,
                        "}" => {
                            b -= 1;
                            if b == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    ck += 1;
                }
                let close = ck.min(code.len() - 1);
                let mut calls = BTreeSet::new();
                for w in open..close {
                    let t = &file.toks[code[w]];
                    if t.kind != crate::lex::TokKind::Ident {
                        continue;
                    }
                    let next = file.toks[code[w + 1]].text;
                    let prev = if w == 0 { "" } else { file.toks[code[w - 1]].text };
                    if next == "(" && prev != "fn" {
                        calls.insert(t.text.to_string());
                        if let Some(orig) = aliases.get(t.text) {
                            calls.insert(orig.clone());
                        }
                    }
                }
                out.push(FnNode {
                    file: fi,
                    name,
                    line,
                    body: (code[open], code[close]),
                    marked_root: marked,
                    trait_ctx: impl_trait,
                    calls,
                });
                // Continue scanning *inside* the body so nested fns and
                // impls are found; brace tracking happens in the main loop.
                depth += 1;
                ci = open + 1;
                continue;
            }
            _ => {}
        }
        ci += 1;
    }
}
