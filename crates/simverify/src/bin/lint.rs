//! Workspace lint driver: `cargo run -p simverify --bin lint [root]`.
//!
//! Scans every `.rs` file under `<root>/crates` against the rule table in
//! [`simverify::lint::RULES`], honouring `<root>/simverify.allow`. Exits 0
//! when clean, 1 on violations, 2 on I/O trouble.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args().nth(1).map(PathBuf::from).unwrap_or_else(|| PathBuf::from("."));
    let report = match simverify::lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("simverify lint: {e}");
            return ExitCode::from(2);
        }
    };
    for v in &report.violations {
        println!("{v}");
    }
    for stale in &report.unused_allow {
        eprintln!("warning: unused simverify.allow entry at line {stale}");
    }
    if report.is_clean() {
        eprintln!(
            "simverify lint: {} files clean ({} rules)",
            report.files_scanned,
            simverify::lint::RULES.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("simverify lint: {} violation(s)", report.violations.len());
        ExitCode::from(1)
    }
}
