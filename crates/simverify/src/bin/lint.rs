//! Workspace lint driver: `cargo run -p simverify --bin lint [root] [--report json]`.
//!
//! Scans every shipping `.rs` file under `<root>/crates` against the rule
//! catalog SV001–SV014, honouring the justified allowlist at
//! `<root>/simverify.allow`. With `--report json` the stable JSON report
//! goes to stdout instead of the human-readable listing (CI diffs it
//! against the committed `simverify_baseline.json`).
//!
//! Exits 0 when passing, 1 on violations or allowlist hygiene failures
//! (stale or expired entries), 2 on I/O trouble.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut args = std::env::args().skip(1).peekable();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--report" => json = args.next().as_deref() == Some("json"),
            "--report=json" => json = true,
            _ => root = PathBuf::from(a),
        }
    }

    let report = match simverify::lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("simverify lint: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", report.to_json());
    } else {
        for v in &report.violations {
            println!("{v}");
        }
    }
    for stale in &report.unused_allow {
        eprintln!("error: stale allowlist entry (suppresses nothing): {stale}");
    }
    for expired in &report.expired_allow {
        eprintln!("error: expired allowlist entry (re-justify or fix the code): {expired}");
    }
    if report.is_passing() {
        eprintln!(
            "simverify lint: {} files clean ({} rules, {} roots, {}/{} fns reachable)",
            report.files_scanned,
            simverify::lint::RULES.len(),
            report.roots.len(),
            report.reachable_fns,
            report.total_fns
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "simverify lint: {} violation(s), {} stale, {} expired allowlist entr(ies)",
            report.violations.len(),
            report.unused_allow.len(),
            report.expired_allow.len()
        );
        ExitCode::from(1)
    }
}
