//! A minimal hand-rolled Rust lexer for the static-analysis pass.
//!
//! The grep-era lints (pre-§13) matched raw line text, which meant a rule
//! pattern spelled inside a comment, a string literal, or a doc example was
//! indistinguishable from real code — the whole false-positive class that
//! forced allowlist entries. This lexer splits a source file into tokens
//! with line numbers so rules can match *code* token sequences only, while
//! comments are kept as their own token kind (the `INVARIANT:` escape and
//! the `PURITY-ROOT:` entry-point markers live in comments).
//!
//! It is deliberately not a full Rust lexer: it has no keyword table and no
//! numeric-suffix grammar, because the rules only need (a) correct
//! *boundaries* for comments, strings, chars and lifetimes, and (b) stable
//! identifier and punctuation tokens. Everything it does not understand
//! degrades to single-character punctuation, which is safe for substring-
//! free sequence matching.

/// Token classification. `Comment`/`DocComment` are retained (markers and
/// invariant escapes read them); rule patterns match the rest.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    Ident,
    Lifetime,
    Num,
    Str,
    Char,
    Punct,
    Comment,
    DocComment,
}

/// One lexed token: kind, the exact source slice, and the 1-based line the
/// token *starts* on (multi-line tokens — block comments, raw strings —
/// keep their start line).
#[derive(Clone, Copy, Debug)]
pub struct Tok<'a> {
    pub kind: TokKind,
    pub text: &'a str,
    pub line: u32,
}

impl Tok<'_> {
    /// Whether this token participates in rule-pattern matching.
    pub fn is_code(&self) -> bool {
        !matches!(self.kind, TokKind::Comment | TokKind::DocComment)
    }
}

/// Two- and three-character punctuation fused into one token, longest
/// match first. Only sequences the rule patterns or the extractor care
/// about need to be here; everything else is fine as single characters.
const PUNCT3: &[&str] = &["..=", "<<=", ">>="];
const PUNCT2: &[&str] =
    &["::", "..", "->", "=>", "<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=", "<<", ">>"];

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_cont(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Lex `src` into tokens. Never fails: unterminated literals run to end of
/// input (the workspace compiles, so in practice they never are).
pub fn lex(src: &str) -> Vec<Tok<'_>> {
    let b = src.as_bytes();
    let n = b.len();
    let mut toks = Vec::with_capacity(n / 6);
    let mut i = 0usize;
    let mut line = 1u32;

    // Count newlines inside [from, to) and advance the line counter.
    fn count_lines(b: &[u8], from: usize, to: usize, line: &mut u32) {
        for &c in &b[from..to.min(b.len())] {
            if c == b'\n' {
                *line += 1;
            }
        }
    }

    // Scan a cooked ("...") string body starting *after* the opening
    // quote; returns the index just past the closing quote.
    fn scan_cooked(b: &[u8], mut j: usize, quote: u8) -> usize {
        while j < b.len() {
            match b[j] {
                b'\\' => j += 2,
                c if c == quote => return j + 1,
                _ => j += 1,
            }
        }
        j
    }

    while i < n {
        let c = b[i];
        if c == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        let start_line = line;

        // Comments.
        if c == b'/' && i + 1 < n && (b[i + 1] == b'/' || b[i + 1] == b'*') {
            if b[i + 1] == b'/' {
                let mut j = i;
                while j < n && b[j] != b'\n' {
                    j += 1;
                }
                let text = &src[start..j];
                let kind = if text.starts_with("///") || text.starts_with("//!") {
                    TokKind::DocComment
                } else {
                    TokKind::Comment
                };
                toks.push(Tok { kind, text, line: start_line });
                i = j;
            } else {
                // Block comment, with nesting per the Rust grammar.
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < n && depth > 0 {
                    if b[j] == b'/' && j + 1 < n && b[j + 1] == b'*' {
                        depth += 1;
                        j += 2;
                    } else if b[j] == b'*' && j + 1 < n && b[j + 1] == b'/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                count_lines(b, start, j, &mut line);
                let text = &src[start..j];
                let kind = if text.starts_with("/**") || text.starts_with("/*!") {
                    TokKind::DocComment
                } else {
                    TokKind::Comment
                };
                toks.push(Tok { kind, text, line: start_line });
                i = j;
            }
            continue;
        }

        // Raw strings, byte strings, raw identifiers: r"..", r#".."#,
        // br".."/b"..", b'..', r#ident.
        if c == b'r' || c == b'b' {
            let body = if c == b'b' && i + 1 < n && b[i + 1] == b'r' { i + 2 } else { i + 1 };
            let raw = c == b'r' || body == i + 2;
            if raw {
                let mut h = body;
                while h < n && b[h] == b'#' {
                    h += 1;
                }
                if h < n && b[h] == b'"' {
                    let hashes = h - body;
                    let mut j = h + 1;
                    while j < n {
                        if b[j] == b'"' {
                            let mut k = j + 1;
                            let mut cnt = 0;
                            while k < n && cnt < hashes && b[k] == b'#' {
                                k += 1;
                                cnt += 1;
                            }
                            if cnt == hashes {
                                j = k;
                                break;
                            }
                        }
                        j += 1;
                    }
                    count_lines(b, start, j, &mut line);
                    toks.push(Tok { kind: TokKind::Str, text: &src[start..j], line: start_line });
                    i = j;
                    continue;
                }
                // r#ident (raw identifier).
                if c == b'r' && h == body + 1 && h < n && is_ident_start(b[h]) {
                    let mut j = h;
                    while j < n && is_ident_cont(b[j]) {
                        j += 1;
                    }
                    toks.push(Tok { kind: TokKind::Ident, text: &src[start..j], line: start_line });
                    i = j;
                    continue;
                }
            }
            if c == b'b' && i + 1 < n && b[i + 1] == b'"' {
                let j = scan_cooked(b, i + 2, b'"');
                count_lines(b, start, j, &mut line);
                toks.push(Tok { kind: TokKind::Str, text: &src[start..j], line: start_line });
                i = j;
                continue;
            }
            if c == b'b' && i + 1 < n && b[i + 1] == b'\'' {
                let j = scan_cooked(b, i + 2, b'\'');
                toks.push(Tok { kind: TokKind::Char, text: &src[start..j], line: start_line });
                i = j;
                continue;
            }
            // Fall through: plain identifier starting with r/b.
        }

        if c == b'"' {
            let j = scan_cooked(b, i + 1, b'"');
            count_lines(b, start, j, &mut line);
            toks.push(Tok { kind: TokKind::Str, text: &src[start..j], line: start_line });
            i = j;
            continue;
        }

        // Lifetime or char literal.
        if c == b'\'' {
            let is_lifetime = i + 1 < n
                && is_ident_start(b[i + 1])
                && (i + 2 >= n || b[i + 2] != b'\'');
            if is_lifetime {
                let mut j = i + 1;
                while j < n && is_ident_cont(b[j]) {
                    j += 1;
                }
                toks.push(Tok { kind: TokKind::Lifetime, text: &src[start..j], line: start_line });
                i = j;
            } else {
                let j = scan_cooked(b, i + 1, b'\'');
                toks.push(Tok { kind: TokKind::Char, text: &src[start..j], line: start_line });
                i = j;
            }
            continue;
        }

        if is_ident_start(c) {
            let mut j = i + 1;
            while j < n && is_ident_cont(b[j]) {
                j += 1;
            }
            toks.push(Tok { kind: TokKind::Ident, text: &src[start..j], line: start_line });
            i = j;
            continue;
        }

        if c.is_ascii_digit() {
            let mut j = i + 1;
            while j < n && (is_ident_cont(b[j]) || (b[j] == b'.' && j + 1 < n && b[j + 1].is_ascii_digit()))
            {
                j += 1;
            }
            toks.push(Tok { kind: TokKind::Num, text: &src[start..j], line: start_line });
            i = j;
            continue;
        }

        // Punctuation, longest fused form first.
        let rest = &src[i..];
        let fused = PUNCT3
            .iter()
            .chain(PUNCT2.iter())
            .find(|p| rest.starts_with(**p))
            .copied();
        let len = fused.map_or_else(|| src[i..].chars().next().map_or(1, char::len_utf8), str::len);
        toks.push(Tok { kind: TokKind::Punct, text: &src[i..i + len], line: start_line });
        i += len;
    }
    toks
}

/// Mark every token belonging to a `#[cfg(test)]`-gated (or `#[test]`)
/// item, attribute included: the architectural rules govern shipping code
/// only. Item extent is approximated by brace matching — from the
/// attribute, the item runs to the close of its first top-level `{...}`
/// block, or to a top-level `;` for brace-less items (`mod tests;`,
/// `use` declarations). `#[cfg(not(test))]` is shipping code and is not
/// masked.
pub fn test_mask(toks: &[Tok<'_>]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let code: Vec<usize> = (0..toks.len()).filter(|&i| toks[i].is_code()).collect();

    // Advance `ci` (an index into `code`) past one `[...]` group starting
    // at the `[`; returns the index of the matching `]`.
    fn close_bracket(toks: &[Tok<'_>], code: &[usize], open: usize) -> usize {
        let mut depth = 0usize;
        let mut ci = open;
        while ci < code.len() {
            match toks[code[ci]].text {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        return ci;
                    }
                }
                _ => {}
            }
            ci += 1;
        }
        code.len() - 1
    }

    let mut ci = 0usize;
    while ci < code.len() {
        if toks[code[ci]].text != "#" || ci + 1 >= code.len() || toks[code[ci + 1]].text != "[" {
            ci += 1;
            continue;
        }
        let attr_open = ci + 1;
        let attr_close = close_bracket(toks, &code, attr_open);
        let (mut has_cfg, mut has_test, mut has_not) = (false, false, false);
        for &ti in &code[attr_open..=attr_close] {
            match toks[ti].text {
                "cfg" => has_cfg = true,
                "test" => has_test = true,
                "not" => has_not = true,
                _ => {}
            }
        }
        let bare_test_attr = !has_cfg && has_test && attr_close == attr_open + 2;
        let is_test_attr = (has_cfg && has_test && !has_not) || bare_test_attr;
        if !is_test_attr {
            ci = attr_close + 1;
            continue;
        }

        // Skip any further attributes stacked on the same item.
        let mut ck = attr_close + 1;
        while ck + 1 < code.len() && toks[code[ck]].text == "#" && toks[code[ck + 1]].text == "[" {
            ck = close_bracket(toks, &code, ck + 1) + 1;
        }
        // Scan the item: to the matching `}` of its first top-level block,
        // or a `;` before any block opens.
        let mut brace = 0i64;
        let item_end = loop {
            if ck >= code.len() {
                break code.len() - 1;
            }
            match toks[code[ck]].text {
                "{" => brace += 1,
                "}" => {
                    brace -= 1;
                    if brace <= 0 {
                        break ck;
                    }
                }
                ";" if brace == 0 => break ck,
                _ => {}
            }
            ck += 1;
        };
        // Mask the whole raw-token span (comments inside included).
        for slot in &mut mask[code[ci]..=code[item_end]] {
            *slot = true;
        }
        ci = item_end + 1;
    }
    mask
}

/// A source file prepared for analysis: tokens, the `#[cfg(test)]` mask,
/// raw lines (allowlist fragments and SV005 match against line text), and
/// the retained comments (line, text) outside test regions.
pub struct PreparedFile<'a> {
    /// Repo-relative forward-slash path; zone matching runs against it.
    pub path: String,
    pub toks: Vec<Tok<'a>>,
    /// `true` for tokens inside `#[cfg(test)]` items.
    pub masked: Vec<bool>,
    pub lines: Vec<&'a str>,
    /// Comments and doc comments outside test regions: `(start line, text)`.
    pub comments: Vec<(u32, &'a str)>,
}

impl<'a> PreparedFile<'a> {
    pub fn new(path: impl Into<String>, src: &'a str) -> PreparedFile<'a> {
        let toks = lex(src);
        let masked = test_mask(&toks);
        let comments = toks
            .iter()
            .zip(&masked)
            .filter(|(t, &m)| !m && !t.is_code())
            .map(|(t, _)| (t.line, t.text))
            .collect();
        PreparedFile { path: path.into(), toks, masked, lines: src.lines().collect(), comments }
    }

    /// Indices of live code tokens (not comments, not `#[cfg(test)]`).
    pub fn code_indices(&self) -> Vec<usize> {
        (0..self.toks.len()).filter(|&i| self.toks[i].is_code() && !self.masked[i]).collect()
    }

    /// Whether a retained comment containing `needle` starts within
    /// `window` lines above (or on) `line`.
    pub fn comment_near(&self, line: u32, window: u32, needle: &str) -> bool {
        let lo = line.saturating_sub(window);
        self.comments.iter().any(|(l, text)| (lo..=line).contains(l) && text.contains(needle))
    }
}
