//! Fleet-scale batch simulation — the million-job subsystem facade.
//!
//! `fleetsim` is the stable front door to the fleet layer that lives in
//! [`batchsim`] (DESIGN.md §15). The classic `batchsim` entry points
//! materialise the arrival stream, the event trace, and a per-job record
//! map — three O(jobs) allocations that are fine at 200 jobs and fatal at
//! 10^6. The fleet layer runs the *same* event-driven engine with each of
//! those swapped for a streaming equivalent:
//!
//! * **arrivals** — [`FleetJobs`], a lazy generator pure in
//!   `(config, index)`; checkpoints image it as `(config, count)` and
//!   replay it forward on resume;
//! * **trace** — folded event-by-event into an FNV-1a fingerprint (the
//!   hash of the rendered trace, never the trace itself), so the
//!   serial-vs-parallel byte-identity gate still holds at any scale;
//! * **statistics** — [`FleetAccum`] scalar sums/counts/maxima plus the
//!   telemetry log2 histograms, enforced O(1)-memory by simverify rule
//!   SV014;
//! * **backfill** — the engine's [`ReleaseIndex`] interval index makes
//!   every EASY shadow computation O(log n) in running jobs instead of a
//!   linear reservation scan.
//!
//! Determinism contract: a fleet run is a pure function of its
//! [`FleetConfig`] — same config, same trace hash, byte for byte, at any
//! `threads` count. [`run_fleet`] over a config and [`batchsim::run_batch`]
//! over the materialised prefix of the same stream produce identical
//! traces; the equivalence is property-tested in `tests/fleet_scale.rs`.

pub use batchsim::{
    class_catalog, resume_fleet, run_fleet, run_fleet_until, BatchCheckpoint, BatchConfig,
    ClassSpec, Discipline, FleetAccum, FleetConfig, FleetJobs, FleetOutcome, FleetShape,
    FleetStats, FleetStreamConfig, PendingQueue, ReleaseIndex, BATCH_CHECKPOINT_VERSION,
    NodeShape, TopoPreset,
};

/// A [`FleetConfig`] sized for fleet-scale studies: `jobs` streamed over
/// `nodes` nodes under EASY backfill, offered load tuned below capacity so
/// the pending queue stays bounded as the job count grows.
///
/// The class catalog is kept at 24 shapes regardless of scale, so the
/// service-time oracle measures at most 24 kernels no matter how many
/// jobs stream through — the property that makes 10^6 jobs affordable.
pub fn scaled_config(jobs: u64, nodes: usize, seed: u64) -> FleetConfig {
    FleetConfig {
        stream: FleetStreamConfig {
            seed,
            jobs,
            classes: 24,
            // ~1100 arrivals per simulated second: with a mean gang of ~8
            // nodes holding ~0.19 s each, that offers ~80% of a 1000-node
            // fleet — busy enough that heads block and backfill fires,
            // slack enough that the pending queue stays bounded.
            mean_interarrival: 0.0009,
        },
        batch: BatchConfig {
            num_nodes: nodes,
            discipline: Discipline::Easy,
            // Bound each EASY pass: examine at most 64 queued candidates
            // behind the head (the SLURM `bf_max_job_test` analogue), so a
            // transient backlog cannot make scheduling O(queue).
            backfill_window: Some(64),
            seed,
            ..BatchConfig::default()
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_config_is_easy_and_windowed() {
        let cfg = scaled_config(10_000, 1000, 7);
        assert_eq!(cfg.stream.jobs, 10_000);
        assert_eq!(cfg.batch.num_nodes, 1000);
        assert!(matches!(cfg.batch.discipline, Discipline::Easy));
        assert_eq!(cfg.batch.backfill_window, Some(64));
    }

    #[test]
    fn facade_runs_a_small_fleet() {
        let mut cfg = scaled_config(200, 64, 2008);
        cfg.batch.threads = 1;
        let out = run_fleet(&cfg);
        assert_eq!(out.accum.jobs, 200);
        assert!(out.trace_events > 0);
        assert!(out.makespan > 0.0);
    }
}
