//! Fleet-scale integration tests: checkpoint/resume byte-identity at 10k
//! jobs over a 1000-node fleet, thread-count invariance, and the O(1)
//! accumulator agreeing with itself across interruption points. These
//! run the production `scaled_config` shape, so the EASY release index,
//! the windowed backfill pass, and the streaming stats all sit on the
//! tested path.

use fleetsim::{resume_fleet, run_fleet, run_fleet_until, scaled_config};

/// Cut a 10k-job fleet run at several points (including inside the warm
/// queue), resume each checkpoint, and require the finished fingerprint,
/// accumulator, and metrics to match the uninterrupted run exactly.
#[test]
fn checkpoint_resume_is_byte_identical_at_10k_jobs() {
    let cfg = scaled_config(10_000, 1000, 2008);
    let whole = run_fleet(&cfg);
    assert_eq!(whole.accum.jobs, 10_000);

    for cut in [1usize, 997, 15_000] {
        let ckpt = run_fleet_until(&cfg, cut)
            .unwrap_or_else(|| panic!("run finished before event {cut}"));
        let resumed = resume_fleet(&ckpt);
        assert_eq!(resumed.trace_hash, whole.trace_hash, "hash diverged at cut {cut}");
        assert_eq!(resumed.trace_events, whole.trace_events, "event count at cut {cut}");
        assert_eq!(resumed.accum, whole.accum, "accumulator at cut {cut}");
        assert_eq!(resumed.metrics, whole.metrics, "metrics at cut {cut}");
        assert_eq!(resumed.reservations, whole.reservations, "reservations at cut {cut}");
    }
}

/// A checkpoint taken serially and resumed on 8 worker threads still
/// lands on the uninterrupted serial fingerprint: thread count is not
/// simulation state, even across a crash boundary.
#[test]
fn resume_at_different_thread_count_is_identical() {
    let cfg = scaled_config(3_000, 1000, 7);
    let whole = run_fleet(&cfg);

    let mut ckpt = run_fleet_until(&cfg, 2_500).expect("checkpoint mid-run");
    ckpt.set_threads(8);
    let resumed = resume_fleet(&ckpt);
    assert_eq!(resumed.trace_hash, whole.trace_hash);
    assert_eq!(resumed.accum, whole.accum);
}

/// The whole fleet run is thread-count-invariant, not just the resumed
/// tail.
#[test]
fn fleet_run_is_thread_count_invariant() {
    let mut cfg = scaled_config(2_000, 1000, 2008);
    let serial = run_fleet(&cfg);
    cfg.batch.threads = 8;
    let parallel = run_fleet(&cfg);
    assert_eq!(serial.trace_hash, parallel.trace_hash);
    assert_eq!(serial.accum, parallel.accum);
    assert_eq!(serial.metrics, parallel.metrics);
}
