//! The "high-responsive scheduling" half of the paper's result (§V-D):
//! a fine-grained MPI application on a noisy node.
//!
//! A `SCHED_NORMAL` task that wakes on message arrival competes with every
//! other process in CFS; a `SCHED_HPC` task preempts background daemons
//! immediately because its class outranks theirs. SIESTA-like codes that
//! sleep and wake thousands of times feel this directly.
//!
//! Run with: `cargo run --release --example os_noise_latency`

use hpcsched::prelude::*;
use workloads::siesta::{self, SiestaConfig};
use workloads::SchedulerSetup;

fn run(noise: NoiseConfig, hpc: bool, seed: u64) -> (f64, f64) {
    let builder = KernelBuilder::new().noise(noise).seed(seed);
    let (mut kernel, setup) = if hpc {
        (builder.build(), SchedulerSetup::Hpc)
    } else {
        (builder.without_hpc_class().build(), SchedulerSetup::Baseline)
    };
    let cfg = SiestaConfig {
        rank_work: vec![0.50, 0.26, 0.15, 0.11],
        iterations: 10,
        rounds: 40,
        ..Default::default()
    };
    let ranks = siesta::spawn(&mut kernel, &cfg, &setup);
    let end = kernel
        .run_until_exited(&ranks, SimDuration::from_secs(600))
        .expect("application finishes");
    // Mean wakeup→dispatch latency across ranks.
    let (lat_sum, lat_n) = ranks.iter().fold((0.0f64, 0u64), |(s, n), &r| {
        let t = kernel.task(r);
        (s + t.latency_total.as_nanos() as f64, n + t.latency_samples)
    });
    let mean_us = if lat_n == 0 { 0.0 } else { lat_sum / lat_n as f64 / 1_000.0 };
    (end.as_secs_f64(), mean_us)
}

fn main() {
    println!("SIESTA-like workload (hub + 3 spokes, thousands of small messages)\n");
    println!(
        "{:<24} {:>12} {:>12} {:>22}",
        "configuration", "exec (s)", "vs quiet", "mean wake latency (us)"
    );

    let (quiet_base, quiet_lat) = run(NoiseConfig::off(), false, 11);
    println!(
        "{:<24} {:>12.3} {:>12} {:>22.1}",
        "CFS, quiet node", quiet_base, "-", quiet_lat
    );

    for (label, noise) in [("light noise", NoiseConfig::light()), ("heavy noise", NoiseConfig::heavy())] {
        let (cfs, cfs_lat) = run(noise, false, 11);
        let (hpc, hpc_lat) = run(noise, true, 11);
        println!(
            "{:<24} {:>12.3} {:>11.1}% {:>22.1}",
            format!("CFS, {label}"),
            cfs,
            100.0 * (cfs - quiet_base) / quiet_base,
            cfs_lat
        );
        println!(
            "{:<24} {:>12.3} {:>11.1}% {:>22.1}",
            format!("HPCSched, {label}"),
            hpc,
            100.0 * (hpc - quiet_base) / quiet_base,
            hpc_lat
        );
    }

    println!(
        "\nHPCSched tasks wake with near-constant microsecond latency regardless of\n\
         noise (class preemption); under CFS the woken rank waits for the daemon's\n\
         burst or the next tick — the OS-noise sensitivity the paper cites."
    );
}
