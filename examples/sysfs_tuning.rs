//! Tuning a live scheduler through the simulated sysfs interface.
//!
//! The paper exposes `HIGH_UTIL`, `LOW_UTIL`, `MAX_PRIO`, `MIN_PRIO` and the
//! Adaptive weights as sysfs entries so administrators can adapt the
//! heuristic to an application without recompiling (§IV-B). The builder
//! exposes the shared tunables handle — the "mount point" — from
//! construction on, and changes take effect at the next iteration boundary.
//!
//! Run with: `cargo run --release --example sysfs_tuning`

use hpcsched::prelude::*;
use hpcsched::HpcTunables;
use workloads::metbench::{self, MetBenchConfig};
use workloads::SchedulerSetup;

fn run_with(tune: impl FnOnce(&mut HpcTunables)) -> (f64, Vec<u8>) {
    let builder = KernelBuilder::new();
    let handle = builder.tunables();
    tune(&mut handle.lock().unwrap());
    let mut kernel = builder.build();

    let cfg = MetBenchConfig {
        loads: vec![0.25, 1.0, 0.25, 1.0],
        iterations: 8,
        ..Default::default()
    };
    let (workers, master) = metbench::spawn(&mut kernel, &cfg, &SchedulerSetup::Hpc);
    let mut all = workers.clone();
    all.push(master);
    let end = kernel
        .run_until_exited(&all, SimDuration::from_secs(300))
        .expect("application finishes");
    let prios = workers.iter().map(|&w| kernel.task(w).hw_prio.value()).collect();
    (end.as_secs_f64(), prios)
}

fn main() {
    println!("Runtime tuning through the sysfs-style interface\n");
    println!("available keys: {:?}\n", HpcTunables::keys());

    let (default_secs, default_prios) = run_with(|_| {});
    println!(
        "defaults (HIGH_UTIL=85, range [4,6]):      {default_secs:.2}s, final priorities {default_prios:?}"
    );

    // Restrict the scheduler to a ±1 priority difference, like an
    // administrator protecting latency-sensitive co-runners.
    let (narrow_secs, narrow_prios) = run_with(|t| {
        t.set("max_prio", "5").expect("valid priority");
    });
    println!(
        "echo 5 > max_prio (range [4,5]):           {narrow_secs:.2}s, final priorities {narrow_prios:?}"
    );

    // Raise HIGH_UTIL so only near-saturated tasks are boosted.
    let (strict_secs, strict_prios) = run_with(|t| {
        t.set("high_util", "99.5").expect("valid threshold");
    });
    println!(
        "echo 99.5 > high_util (stricter boost):    {strict_secs:.2}s, final priorities {strict_prios:?}"
    );

    // Invalid writes are rejected exactly like a sysfs store returning
    // -EINVAL.
    let mut t = HpcTunables::default();
    let err = t.set("max_prio", "9").unwrap_err();
    println!("\necho 9 > max_prio -> rejected: {err}");
    let err = t.set("low_util", "95").unwrap_err();
    println!("echo 95 > low_util -> rejected: {err}");

    assert!(narrow_secs >= default_secs, "±1 range cannot beat ±2 here");
    println!(
        "\nThe ±1 run improves less than the default ±2 run — the decode-slot\n\
         ratio at difference 1 (3:1) cannot absorb a 4:1 load imbalance, which\n\
         is why the paper explores priorities up to ±2 and no further."
    );
}
