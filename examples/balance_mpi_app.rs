//! Balance a real-shaped MPI application and *watch it happen*: runs the
//! MetBench benchmark under the stock scheduler and under HPCSched, prints
//! the paper-style statistics table and the PARAVER-style ASCII trace.
//!
//! Run with: `cargo run --release --example balance_mpi_app`

use hpcsched::prelude::*;
use schedsim::SharedSink;
use tracefmt::{render_timeline, AppStats, AsciiOptions, Timeline};
use workloads::metbench::{self, MetBenchConfig};
use workloads::SchedulerSetup;

fn run(cfg: &MetBenchConfig, hpc: bool) -> (f64, String, String) {
    let builder = KernelBuilder::new();
    let (mut kernel, setup) = if hpc {
        (builder.build(), SchedulerSetup::Hpc)
    } else {
        (builder.without_hpc_class().build(), SchedulerSetup::Baseline)
    };
    let sink = SharedSink::new();
    kernel.observe(Box::new(sink.clone()));

    let (workers, master) = metbench::spawn(&mut kernel, cfg, &setup);
    let mut all = workers.clone();
    all.push(master);
    let end = kernel
        .run_until_exited(&all, SimDuration::from_secs(600))
        .expect("application finishes");

    let timeline = Timeline::from_records(&sink.snapshot()).filter_tasks(&workers);
    let stats = AppStats::for_tasks(&timeline, &workers);
    let label = if hpc { "HPCSched" } else { "Baseline" };
    (
        end.as_secs_f64(),
        stats.to_table(label),
        render_timeline(&timeline, &AsciiOptions { width: 100, ..Default::default() }),
    )
}

fn main() {
    // A shortened MetBench: two small-load and two large-load workers.
    let cfg = MetBenchConfig {
        loads: vec![0.25, 1.0, 0.25, 1.0],
        iterations: 10,
        ..Default::default()
    };

    println!("MetBench (4 workers + master, strict barrier per iteration)\n");
    for hpc in [false, true] {
        let (secs, table, trace) = run(&cfg, hpc);
        println!("{table}");
        println!("{trace}");
        println!("total execution time: {secs:.2}s\n{}", "=".repeat(70));
    }
    println!(
        "\nThe dark (#) compute phases of the small workers stretch to fill the\n\
         iteration once HPCSched raises the large workers' hardware priorities\n\
         (digit markers in the trace) — compare with paper Figure 3."
    );
}
