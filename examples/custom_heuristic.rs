//! Plugging a custom prioritization heuristic into the HPC scheduler.
//!
//! The paper's future work asks for "an heuristic capable of performing
//! well for both constant and dynamic applications". This example shows the
//! extension surface: implement [`hpcsched::Heuristic`] and hand it to a
//! [`schedsim::policies::Table1Balancer`] driving the
//! [`schedsim::BalancedClass`]. The demo heuristic jumps straight to the
//! target priority instead of stepping one level per iteration. (For a
//! whole new *policy* rather than a new Table-I heuristic, implement
//! [`schedsim::Balancer`] and pass it to `KernelBuilder::balancer`.)
//!
//! Run with: `cargo run --release --example custom_heuristic`

use hpcsched::prelude::*;
use hpcsched::{Heuristic, Power5Mechanism, TaskIterStats};
use schedsim::policies::Table1Balancer;
use mpisim::{Mpi, MpiConfig};
use schedsim::program::FnProgram;
use std::sync::{Arc, Mutex};

/// One-shot heuristic: high-utilization tasks go straight to MAX_PRIO,
/// low-utilization tasks straight to MIN_PRIO (no gradual stepping). More
/// aggressive than Uniform, less noisy than Adaptive.
struct OneShotHeuristic;

impl Heuristic for OneShotHeuristic {
    fn name(&self) -> &'static str {
        "one-shot"
    }

    fn metric(&self, stats: &TaskIterStats, _tun: &HpcTunables) -> f64 {
        // Judge on the last iteration, like Adaptive with L = 1.
        stats.last_util
    }

    fn next_priority(
        &self,
        stats: &TaskIterStats,
        current: HwPriority,
        tun: &HpcTunables,
    ) -> HwPriority {
        let util = self.metric(stats, tun);
        if util >= tun.high_util {
            tun.max_prio
        } else if util <= tun.low_util {
            tun.min_prio
        } else {
            current
        }
    }
}

fn main() {
    // Assemble a kernel manually (instead of via KernelBuilder) to show
    // the full plug-in path: chip → kernel → balancer → class.
    let chip = Chip::new(Topology::openpower_710());
    let mut kernel = Kernel::new(chip, KernelConfig::default());
    let tunables = Arc::new(Mutex::new(HpcTunables::default()));
    let balancer = Table1Balancer::new(
        Box::new(OneShotHeuristic),
        Box::new(Power5Mechanism),
        tunables.clone(),
    );
    let class = BalancedClass::new(
        HpcPolicyKind::Rr,
        SimDuration::from_millis(100),
        Box::new(balancer),
    );
    kernel.install_class_after_rt(Box::new(class));

    // An imbalanced pair on core 0.
    let mpi = Mpi::new(2, MpiConfig::default());
    let mut ids = Vec::new();
    for (rank, load) in [(0usize, 0.05f64), (1usize, 0.2f64)] {
        let mpi = mpi.clone();
        let mut compute = true;
        let mut left = 10u32;
        ids.push(kernel.spawn(
            format!("rank{rank}"),
            SchedPolicy::Hpc,
            Box::new(FnProgram(move |api: &mut KernelApi<'_>| {
                if compute {
                    compute = false;
                    Action::Compute(load)
                } else if left > 0 {
                    left -= 1;
                    compute = true;
                    Action::Block(mpi.barrier(api, rank))
                } else {
                    Action::Exit
                }
            })),
            SpawnOptions { affinity: Some(vec![CpuId(rank)]), ..Default::default() },
        ));
    }

    let end = kernel.run_until_exited(&ids, SimDuration::from_secs(60)).expect("finishes");
    println!("one-shot heuristic run finished in {:.3}s", end.as_secs_f64());
    for &id in &ids {
        let t = kernel.task(id);
        println!(
            "  {}: utilization {:>5.1}%, hw priority {} (reached in one iteration)",
            t.name,
            t.cpu_utilization(end) * 100.0,
            t.hw_prio
        );
    }
    assert_eq!(kernel.task(ids[1]).hw_prio, HwPriority::HIGH, "busy rank at MAX_PRIO");
    println!("\nCompare: the built-in Uniform heuristic needs two iterations to reach");
    println!("priority 6; one-shot jumps directly — at the cost of over-reacting to");
    println!("a single unrepresentative iteration (exactly the trade-off of paper IV-B).");
}
