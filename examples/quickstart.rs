//! Quickstart: balance an imbalanced SMT pair with HPCSched.
//!
//! Two workers share one POWER5 core. One has 4× the work of the other, so
//! under the stock scheduler the small worker idles at the barrier ~75% of
//! the time while the large worker grinds at equal-priority SMT speed.
//! Moving the processes to `SCHED_HPC` lets the kernel raise the large
//! worker's *hardware thread priority*, shifting decode slots to it and
//! shrinking every iteration.
//!
//! Run with: `cargo run --release --example quickstart`

use hpcsched::prelude::*;
use mpisim::{Mpi, MpiConfig};
use schedsim::program::FnProgram;

/// Build a two-worker barrier-synchronized program pair (rank 0 small,
/// rank 1 large) and return their task ids.
fn spawn_pair(kernel: &mut Kernel, policy: SchedPolicy, iterations: u32) -> Vec<TaskId> {
    let mpi = Mpi::new(2, MpiConfig::default());
    let mut ids = Vec::new();
    for (rank, load) in [(0usize, 0.1f64), (1usize, 0.4f64)] {
        let mpi = mpi.clone();
        let mut computing = true;
        let mut left = iterations;
        let program = FnProgram(move |api: &mut KernelApi<'_>| {
            if computing {
                computing = false;
                Action::Compute(load)
            } else if left > 0 {
                left -= 1;
                computing = true;
                Action::Block(mpi.barrier(api, rank))
            } else {
                Action::Exit
            }
        });
        // Pin the pair onto the two SMT contexts of core 0.
        let cpu = CpuId(rank);
        ids.push(kernel.spawn(
            format!("worker{rank}"),
            policy,
            Box::new(program),
            SpawnOptions { affinity: Some(vec![cpu]), ..Default::default() },
        ));
    }
    ids
}

fn run(with_hpcsched: bool) -> (f64, Vec<String>) {
    let builder = KernelBuilder::new();
    let (mut kernel, policy) = if with_hpcsched {
        (builder.build(), SchedPolicy::Hpc)
    } else {
        (builder.without_hpc_class().build(), SchedPolicy::Normal)
    };
    let ids = spawn_pair(&mut kernel, policy, 20);
    let end = kernel
        .run_until_exited(&ids, SimDuration::from_secs(120))
        .expect("application finishes");
    let report = ids
        .iter()
        .map(|&id| {
            let t = kernel.task(id);
            format!(
                "  {}: utilization {:>5.1}%, final hw priority {}",
                t.name,
                t.cpu_utilization(end) * 100.0,
                t.hw_prio
            )
        })
        .collect();
    (end.as_secs_f64(), report)
}

fn main() {
    println!("HPCSched quickstart: 4:1 imbalanced pair on one POWER5 core\n");

    let (base, base_report) = run(false);
    println!("Standard scheduler (CFS): {base:.2}s");
    base_report.iter().for_each(|l| println!("{l}"));

    let (hpc, hpc_report) = run(true);
    println!("\nHPCSched (SCHED_HPC, Uniform heuristic): {hpc:.2}s");
    hpc_report.iter().for_each(|l| println!("{l}"));

    println!(
        "\nImprovement: {:+.1}% — the scheduler detected the imbalance from \
         per-iteration CPU utilization\nand raised the busy worker's hardware \
         priority, no application changes needed.",
        100.0 * (base - hpc) / base
    );
}
