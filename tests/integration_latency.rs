//! Scheduler-latency integration: the SCHED_HPC class's responsiveness on
//! a noisy node (paper §V-D, the SIESTA analysis).

use hpcsched::prelude::*;
use workloads::siesta::{self, SiestaConfig};
use workloads::SchedulerSetup;

fn cfg() -> SiestaConfig {
    SiestaConfig {
        rank_work: vec![0.30, 0.15, 0.09, 0.06],
        iterations: 6,
        rounds: 25,
        ..Default::default()
    }
}

fn run(noise: NoiseConfig, hpc: bool) -> (f64, f64) {
    let builder = KernelBuilder::new().noise(noise).seed(99);
    let (mut kernel, setup) = if hpc {
        (builder.build(), SchedulerSetup::Hpc)
    } else {
        (builder.without_hpc_class().build(), SchedulerSetup::Baseline)
    };
    let ranks = siesta::spawn(&mut kernel, &cfg(), &setup);
    let end = kernel.run_until_exited(&ranks, SimDuration::from_secs(600)).expect("finishes");
    let (sum, n) = ranks.iter().fold((0.0f64, 0u64), |(s, n), &r| {
        let t = kernel.task(r);
        (s + t.latency_total.as_nanos() as f64, n + t.latency_samples)
    });
    (end.as_secs_f64(), if n == 0 { 0.0 } else { sum / n as f64 / 1_000.0 })
}

#[test]
fn hpc_class_cuts_wakeup_latency_under_noise() {
    let (_, cfs_lat) = run(NoiseConfig::heavy(), false);
    let (_, hpc_lat) = run(NoiseConfig::heavy(), true);
    assert!(
        hpc_lat < cfs_lat * 0.5,
        "HPC latency {hpc_lat}us should be well below CFS {cfs_lat}us"
    );
    // Class preemption keeps it near the context-switch cost.
    assert!(hpc_lat < 50.0, "HPC latency {hpc_lat}us stays microsecond-scale");
}

#[test]
fn hpc_class_improves_execution_on_noisy_node() {
    let (cfs, _) = run(NoiseConfig::heavy(), false);
    let (hpc, _) = run(NoiseConfig::heavy(), true);
    assert!(hpc < cfs, "HPCSched {hpc}s vs CFS {cfs}s under heavy noise");
}

#[test]
fn noise_hurts_cfs_more_than_hpcsched() {
    let (cfs_quiet, _) = run(NoiseConfig::off(), false);
    let (cfs_noisy, _) = run(NoiseConfig::heavy(), false);
    let (hpc_quiet, _) = run(NoiseConfig::off(), true);
    let (hpc_noisy, _) = run(NoiseConfig::heavy(), true);
    let cfs_hit = (cfs_noisy - cfs_quiet) / cfs_quiet;
    let hpc_hit = (hpc_noisy - hpc_quiet) / hpc_quiet;
    assert!(
        hpc_hit < cfs_hit + 1e-9,
        "noise slowdown: hpc {hpc_hit:.4} must not exceed cfs {cfs_hit:.4}"
    );
}

#[test]
fn rt_semantics_preserved_above_hpc_class() {
    // Paper §IV: the HPC class sits *below* real-time. An RT hog on a CPU
    // must starve an HPC task placed there, not the other way around.
    use schedsim::program::ScriptedProgram;
    let mut kernel = KernelBuilder::new().build();
    let rt = kernel.spawn(
        "rt-hog",
        SchedPolicy::Fifo,
        Box::new(ScriptedProgram::compute_once(0.3)),
        SpawnOptions {
            rt_priority: 50,
            affinity: Some(vec![CpuId(0)]),
            ..Default::default()
        },
    );
    let hpc = kernel.spawn(
        "hpc-task",
        SchedPolicy::Hpc,
        Box::new(ScriptedProgram::compute_once(0.1)),
        SpawnOptions { affinity: Some(vec![CpuId(0)]), ..Default::default() },
    );
    kernel.run_until_exited(&[rt, hpc], SimDuration::from_secs(60)).expect("finishes");
    let rt_end = kernel.task(rt).exited_at.unwrap();
    let hpc_end = kernel.task(hpc).exited_at.unwrap();
    assert!(rt_end < hpc_end, "RT finishes first despite arriving together");
}

#[test]
fn hpc_outranks_normal_tasks() {
    use schedsim::program::ScriptedProgram;
    let mut kernel = KernelBuilder::new().build();
    let normal = kernel.spawn(
        "normal",
        SchedPolicy::Normal,
        Box::new(ScriptedProgram::compute_once(0.3)),
        SpawnOptions { affinity: Some(vec![CpuId(0)]), ..Default::default() },
    );
    let hpc = kernel.spawn(
        "hpc-task",
        SchedPolicy::Hpc,
        Box::new(ScriptedProgram::compute_once(0.1)),
        SpawnOptions { affinity: Some(vec![CpuId(0)]), ..Default::default() },
    );
    kernel.run_until_exited(&[normal, hpc], SimDuration::from_secs(60)).expect("finishes");
    assert!(
        kernel.task(hpc).exited_at.unwrap() < kernel.task(normal).exited_at.unwrap(),
        "HPC class outranks CFS"
    );
}
