//! Conformance integration: a live kernel run, checked end-to-end by
//! `simverify` — the trace respects every runtime invariant, the telemetry
//! counters reconcile, and the run replays identically under one seed.

use hpcsched::prelude::*;
use schedsim::SharedSink;
use simverify::conformance::{self, CheckConfig};
use simverify::determinism;
use workloads::metbench::{self, MetBenchConfig};
use workloads::SchedulerSetup;

fn metbench_cfg() -> MetBenchConfig {
    MetBenchConfig {
        loads: vec![0.05, 0.2, 0.05, 0.2],
        iterations: 8,
        ..Default::default()
    }
}

fn run(seed: u64) -> (Vec<schedsim::TraceRecord>, telemetry::MetricsSnapshot) {
    let mut kernel = KernelBuilder::new().seed(seed).try_build().expect("valid");
    let sink = SharedSink::new();
    kernel.observe(Box::new(sink.clone()));
    let cfg = metbench_cfg();
    let (workers, master) = metbench::spawn(&mut kernel, &cfg, &SchedulerSetup::Hpc);
    let mut all = workers.clone();
    all.push(master);
    kernel.run_until_exited(&all, SimDuration::from_secs(600)).expect("finishes");
    (sink.snapshot(), kernel.metrics_registry().snapshot())
}

#[test]
fn live_kernel_run_passes_conformance() {
    let (records, snapshot) = run(2008);
    assert!(!records.is_empty());
    let report = conformance::check_with_metrics(&records, &snapshot, &CheckConfig::default());
    assert!(report.is_clean(), "live run violates invariants:\n{}", report.render());
    assert_eq!(report.records_checked, records.len());
}

#[test]
fn live_kernel_run_is_deterministic() {
    let n = determinism::check(|| run(7).0)
        .unwrap_or_else(|d| panic!("seeded kernel run diverged:\n{d}"));
    assert!(n > 0);
}

#[test]
fn corrupting_a_live_trace_is_detected() {
    // The checker must catch corruption in otherwise-real traces, not just
    // synthetic ones: clamp-break one HwPrio record and reverse one time.
    let (mut records, _) = run(2008);
    let hw = records
        .iter()
        .position(|r| matches!(r.event, schedsim::TraceEvent::HwPrio { .. }))
        .expect("imbalanced metbench moves priorities");
    records[hw].event =
        schedsim::TraceEvent::HwPrio { prio: power5::HwPriority::VERY_HIGH };
    let last = records.len() - 1;
    records[last].time = simcore::SimTime::ZERO;

    let report = conformance::check_trace(&records, &CheckConfig::default());
    let rules: Vec<_> = report.violations.iter().map(|v| v.rule).collect();
    assert!(rules.contains(&"C001-priority-bounds"), "{rules:?}");
    assert!(rules.contains(&"C002-monotonic-time"), "{rules:?}");
}
