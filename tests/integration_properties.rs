//! Property-based integration tests: whole-simulation invariants under
//! randomized workload shapes.

use hpcsched::prelude::*;
use proptest::prelude::*;
use workloads::metbench::{self, MetBenchConfig};
use workloads::SchedulerSetup;

/// Run MetBench with the given loads; return (exec seconds, per-worker
/// exec totals in seconds, per-worker priorities).
fn run(loads: Vec<f64>, iterations: u32, hpc: bool, seed: u64) -> (f64, Vec<f64>, Vec<u8>) {
    let cfg = MetBenchConfig { loads, iterations, ..Default::default() };
    let builder = KernelBuilder::new().seed(seed);
    let (mut kernel, setup) = if hpc {
        (builder.build(), SchedulerSetup::Hpc)
    } else {
        (builder.without_hpc_class().build(), SchedulerSetup::Baseline)
    };
    let (workers, master) = metbench::spawn(&mut kernel, &cfg, &setup);
    let mut all = workers.clone();
    all.push(master);
    let end = kernel
        .run_until_exited(&all, SimDuration::from_secs(3_000))
        .expect("finishes within deadline");
    let execs = workers.iter().map(|&w| kernel.task(w).exec_total.as_secs_f64()).collect();
    let prios = workers.iter().map(|&w| kernel.task(w).hw_prio.value()).collect();
    (end.as_secs_f64(), execs, prios)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Work is conserved: each worker's consumed CPU time is bounded by its
    /// total work divided by the slowest/fastest speeds the chip can give.
    #[test]
    fn work_conservation(
        loads in proptest::collection::vec(0.01f64..0.15, 4),
        iterations in 2u32..6,
    ) {
        let total: Vec<f64> = loads.iter().map(|l| l * iterations as f64).collect();
        let (_, execs, _) = run(loads, iterations, true, 1);
        for (exec, work) in execs.iter().zip(&total) {
            // Fastest possible speed 1.25 (would-be ST), slowest regular
            // speed 0.8*0.31 ≈ 0.248.
            prop_assert!(*exec >= work / 1.30 - 0.01, "exec {exec} work {work}");
            prop_assert!(*exec <= work / 0.20 + 0.01, "exec {exec} work {work}");
        }
    }

    /// Determinism: identical configuration and seed ⇒ identical results.
    #[test]
    fn determinism(loads in proptest::collection::vec(0.01f64..0.1, 4)) {
        let a = run(loads.clone(), 3, true, 7);
        let b = run(loads, 3, true, 7);
        prop_assert_eq!(a.0, b.0);
        prop_assert_eq!(a.1, b.1);
        prop_assert_eq!(a.2, b.2);
    }

    /// Priorities stay inside the configured [MIN_PRIO, MAX_PRIO] range no
    /// matter the load shape.
    #[test]
    fn priorities_stay_in_range(
        loads in proptest::collection::vec(0.005f64..0.2, 4),
        iterations in 2u32..8,
    ) {
        let (_, _, prios) = run(loads, iterations, true, 3);
        for p in prios {
            prop_assert!((4..=6).contains(&p), "priority {p} escaped [4,6]");
        }
    }

    /// HPCSched's worst case is bounded: mild imbalances (≈1.2–2×) cannot
    /// be matched by the coarse ±2 hardware priority steps, so the
    /// scheduler "will oscillate between two solutions" (paper §IV-B) —
    /// but the oscillation cost stays small, and strong imbalances win.
    #[test]
    fn never_much_worse_than_baseline(
        small in 0.01f64..0.08,
        ratio in 1.0f64..4.0,
    ) {
        let loads = vec![small, small * ratio, small, small * ratio];
        let (base, _, _) = run(loads.clone(), 5, false, 5);
        let (hpc, _, _) = run(loads, 5, true, 5);
        prop_assert!(hpc <= base * 1.15, "hpc {hpc} vs baseline {base}");
    }
}

#[test]
fn strongly_imbalanced_shapes_always_improve() {
    for ratio in [3.0, 4.0, 5.0] {
        let loads = vec![0.05, 0.05 * ratio, 0.05, 0.05 * ratio];
        let (base, _, _) = run(loads.clone(), 6, false, 2);
        let (hpc, _, _) = run(loads, 6, true, 2);
        assert!(
            hpc < base * 0.97,
            "ratio {ratio}: hpc {hpc} vs base {base} should improve ≥3%"
        );
    }
}
