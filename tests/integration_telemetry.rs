//! Telemetry integration: the kernel's metric counters must reconcile with
//! the trace a [`SharedSink`] observer collects from the same run — the two
//! are independent views of the same hot-path events.

use hpcsched::prelude::*;
use schedsim::{SharedSink, TraceEvent};
use workloads::metbench::{self, MetBenchConfig};
use workloads::SchedulerSetup;

fn metbench_cfg() -> MetBenchConfig {
    MetBenchConfig {
        loads: vec![0.05, 0.2, 0.05, 0.2],
        iterations: 8,
        ..Default::default()
    }
}

#[test]
fn counters_reconcile_with_trace_records() {
    let mut kernel = KernelBuilder::new().try_build().expect("paper defaults are valid");
    let sink = SharedSink::new();
    kernel.observe(Box::new(sink.clone()));

    let cfg = metbench_cfg();
    let (workers, master) = metbench::spawn(&mut kernel, &cfg, &SchedulerSetup::Hpc);
    let mut all = workers.clone();
    all.push(master);
    kernel.run_until_exited(&all, SimDuration::from_secs(600)).expect("finishes");

    let records = sink.snapshot();
    let count = |pred: &dyn Fn(&TraceEvent) -> bool| -> u64 {
        records.iter().filter(|r| pred(&r.event)).count() as u64
    };
    let hw_prio = count(&|e| matches!(e, TraceEvent::HwPrio { .. }));
    let iterations = count(&|e| matches!(e, TraceEvent::IterationEnd { .. }));
    let exits = count(&|e| matches!(e, TraceEvent::Exit));

    let snapshot = kernel.metrics_registry().snapshot();
    assert!(hw_prio > 0, "an imbalanced MetBench run must move priorities");
    assert_eq!(snapshot.counter("kernel.hw_prio_transitions"), hw_prio);
    assert_eq!(snapshot.counter("kernel.iterations"), iterations);
    assert_eq!(snapshot.counter("kernel.task_exits"), exits);
    assert_eq!(exits, all.len() as u64, "every task exits exactly once");

    // Per-CPU rollup agrees with the kernel-wide count.
    assert_eq!(snapshot.counter_family("cpu"), hw_prio);

    // The purely metric-side counters are live too.
    assert!(snapshot.counter("kernel.context_switches") > 0);
    assert!(snapshot.counter("kernel.ticks") > 0);
    assert!(snapshot.counter("sim.events.processed") > 0);
    assert!(snapshot.counter("hpc.decisions.uniform.accepted") > 0);
}

#[test]
fn counters_count_even_without_observers() {
    // Trace-derived counters are bumped at the emission point whether or
    // not anyone is listening.
    let mut kernel = KernelBuilder::new().try_build().expect("valid");
    let cfg = metbench_cfg();
    let (workers, master) = metbench::spawn(&mut kernel, &cfg, &SchedulerSetup::Hpc);
    let mut all = workers.clone();
    all.push(master);
    kernel.run_until_exited(&all, SimDuration::from_secs(600)).expect("finishes");

    let snapshot = kernel.metrics_registry().snapshot();
    assert_eq!(snapshot.counter("kernel.task_exits"), all.len() as u64);
    assert!(snapshot.counter("kernel.hw_prio_transitions") > 0);
    assert!(snapshot.counter("kernel.iterations") > 0);
}

#[test]
fn telemetry_snapshot_is_deterministic_across_runs() {
    let run = || {
        let mut kernel =
            KernelBuilder::new().seed(7).try_build().expect("valid");
        let cfg = metbench_cfg();
        let (workers, master) = metbench::spawn(&mut kernel, &cfg, &SchedulerSetup::Hpc);
        let mut all = workers.clone();
        all.push(master);
        kernel.run_until_exited(&all, SimDuration::from_secs(600)).expect("finishes");
        kernel.metrics_registry().snapshot()
    };
    let (a, b) = (run(), run());
    // Wall-clock histograms (pick latency) legitimately differ; every
    // sim-derived counter must not.
    for name in [
        "kernel.context_switches",
        "kernel.ticks",
        "kernel.hw_prio_transitions",
        "kernel.iterations",
        "kernel.task_exits",
        "sim.events.scheduled",
        "sim.events.cancelled",
        "sim.events.processed",
        "hpc.decisions.uniform.accepted",
        "hpc.decisions.uniform.rejected",
        "hpc.detector.balanced",
        "hpc.detector.imbalanced",
    ] {
        assert_eq!(a.counter(name), b.counter(name), "{name} differs across identical runs");
    }
}
