//! Dynamic-behaviour integration: MetBenchVar's load reversal and the
//! scheduler's re-balancing (paper §V-B).

use hpcsched::prelude::*;
use hpcsched::HeuristicKind;
use workloads::metbench::MetBenchConfig;
use workloads::metbenchvar::{self, MetBenchVarConfig};
use workloads::SchedulerSetup;

fn cfg() -> MetBenchVarConfig {
    MetBenchVarConfig {
        base: MetBenchConfig {
            loads: vec![0.05, 0.2, 0.05, 0.2],
            iterations: 18,
            ..Default::default()
        },
        k: 6,
    }
}

fn run(mode: &str) -> (f64, Vec<u8>) {
    let c = cfg();
    let (mut kernel, setup) = match mode {
        "baseline" => {
            (KernelBuilder::new().without_hpc_class().build(), SchedulerSetup::Baseline)
        }
        "static" => (
            KernelBuilder::new().without_hpc_class().build(),
            SchedulerSetup::Static(c.base.static_priorities()),
        ),
        "uniform" => (
            KernelBuilder::new().heuristic(HeuristicKind::Uniform).build(),
            SchedulerSetup::Hpc,
        ),
        "adaptive" => (
            KernelBuilder::new().heuristic(HeuristicKind::Adaptive).build(),
            SchedulerSetup::Hpc,
        ),
        _ => unreachable!(),
    };
    let (workers, master) = metbenchvar::spawn(&mut kernel, &c, &setup);
    let mut all = workers.clone();
    all.push(master);
    let end = kernel.run_until_exited(&all, SimDuration::from_secs(600)).expect("finishes");
    let prios = workers.iter().map(|&w| kernel.task(w).hw_prio.value()).collect();
    (end.as_secs_f64(), prios)
}

#[test]
fn dynamic_heuristics_beat_baseline_despite_reversals() {
    let (base, _) = run("baseline");
    for mode in ["uniform", "adaptive"] {
        let (secs, _) = run(mode);
        let imp = 100.0 * (base - secs) / base;
        assert!(imp > 4.0, "{mode} improvement {imp}% (paper: ~11%)");
    }
}

#[test]
fn dynamic_beats_static_under_behaviour_change() {
    // Paper §V-B: the static assignment is reversed-wrong for the middle
    // period; the dynamic scheduler re-balances within a few iterations.
    let (stat, _) = run("static");
    let (unif, _) = run("uniform");
    let (adapt, _) = run("adaptive");
    assert!(unif <= stat * 1.01, "uniform {unif} vs static {stat}");
    assert!(adapt <= stat * 1.01, "adaptive {adapt} vs static {stat}");
}

#[test]
fn final_priorities_follow_final_period() {
    // 18 iterations, k = 6 → periods: initial, swapped, initial. The run
    // ends in an *initial-assignment* period, so the initially-large
    // workers (ranks 1 and 3) must be the boosted ones again.
    let (_, prios) = run("adaptive");
    assert_eq!(prios[1], 6, "adaptive final prios {prios:?}");
    assert_eq!(prios[3], 6, "adaptive final prios {prios:?}");
    assert!(prios[0] <= 5 && prios[2] <= 5, "small-load workers below max {prios:?}");
}

#[test]
fn priority_changes_track_each_reversal() {
    // The scheduler must issue a burst of priority changes after every
    // swap: count hw-priority trace events per period.
    let c = cfg();
    let mut kernel =
        KernelBuilder::new().heuristic(HeuristicKind::Adaptive).build();
    let sink = schedsim::SharedSink::new();
    kernel.observe(Box::new(sink.clone()));
    let (workers, master) = metbenchvar::spawn(&mut kernel, &c, &SchedulerSetup::Hpc);
    let mut all = workers.clone();
    all.push(master);
    let end = kernel.run_until_exited(&all, SimDuration::from_secs(600)).expect("finishes");

    let records = sink.snapshot();
    let period = end.as_nanos() / 3;
    let mut per_period = [0u32; 3];
    for r in &records {
        if matches!(r.event, schedsim::TraceEvent::HwPrio { .. }) {
            let idx = ((r.time.as_nanos() / period.max(1)) as usize).min(2);
            per_period[idx] += 1;
        }
    }
    assert!(per_period[0] > 0, "initial balancing: {per_period:?}");
    assert!(per_period[1] > 0, "re-balancing after first swap: {per_period:?}");
    assert!(per_period[2] > 0, "re-balancing after second swap: {per_period:?}");
}
