//! Cross-crate integration: the full balancing pipeline
//! (workload → MPI → kernel → HPC class → heuristics → chip) on
//! paper-shaped applications, at reduced scale.

use hpcsched::prelude::*;
use workloads::btmz::{self, BtMzConfig};
use workloads::metbench::{self, MetBenchConfig};
use workloads::SchedulerSetup;

fn metbench_cfg() -> MetBenchConfig {
    MetBenchConfig { loads: vec![0.05, 0.2, 0.05, 0.2], iterations: 8, ..Default::default() }
}

fn run_metbench(mode: &str) -> (f64, Vec<f64>, Vec<u8>) {
    let cfg = metbench_cfg();
    let (mut kernel, setup) = match mode {
        "baseline" => {
            (KernelBuilder::new().without_hpc_class().build(), SchedulerSetup::Baseline)
        }
        "static" => (
            KernelBuilder::new().without_hpc_class().build(),
            SchedulerSetup::Static(cfg.static_priorities()),
        ),
        "uniform" => (KernelBuilder::new().build(), SchedulerSetup::Hpc),
        "adaptive" => (
            KernelBuilder::new().heuristic(hpcsched::HeuristicKind::Adaptive).build(),
            SchedulerSetup::Hpc,
        ),
        _ => unreachable!(),
    };
    let (workers, master) = metbench::spawn(&mut kernel, &cfg, &setup);
    let mut all = workers.clone();
    all.push(master);
    let end = kernel.run_until_exited(&all, SimDuration::from_secs(120)).expect("finishes");
    let utils = workers.iter().map(|&w| kernel.task(w).cpu_utilization(end) * 100.0).collect();
    let prios = workers.iter().map(|&w| kernel.task(w).hw_prio.value()).collect();
    (end.as_secs_f64(), utils, prios)
}

#[test]
fn metbench_all_schedulers_beat_baseline() {
    let (base, _, _) = run_metbench("baseline");
    for mode in ["static", "uniform", "adaptive"] {
        let (secs, _, _) = run_metbench(mode);
        assert!(
            secs < base * 0.97,
            "{mode} should improve ≥3% over baseline: {secs} vs {base}"
        );
    }
}

#[test]
fn metbench_improvement_factor_matches_paper_shape() {
    // Paper Table III: static ≈ +13%, dynamic ≈ +12%.
    let (base, _, _) = run_metbench("baseline");
    let (stat, _, _) = run_metbench("static");
    let (unif, _, _) = run_metbench("uniform");
    let s_imp = 100.0 * (base - stat) / base;
    let u_imp = 100.0 * (base - unif) / base;
    assert!((8.0..18.0).contains(&s_imp), "static improvement {s_imp}");
    assert!((7.0..18.0).contains(&u_imp), "uniform improvement {u_imp}");
    // Dynamic is within a couple points of hand-tuned static.
    assert!((s_imp - u_imp).abs() < 5.0, "static {s_imp} vs uniform {u_imp}");
}

#[test]
fn metbench_baseline_utilization_profile() {
    let (_, utils, prios) = run_metbench("baseline");
    // 4:1 loads → ~25% vs ~100%.
    assert!((20.0..35.0).contains(&utils[0]), "small worker {utils:?}");
    assert!(utils[1] > 95.0, "large worker {utils:?}");
    assert!(utils.iter().zip(&[25.0, 100.0, 25.0, 100.0]).all(|(u, e)| (u - e).abs() < 12.0));
    assert!(prios.iter().all(|&p| p == 4), "baseline never changes hw prio");
}

#[test]
fn metbench_uniform_converges_to_paper_priorities() {
    let (_, utils, prios) = run_metbench("uniform");
    assert_eq!(prios, vec![4, 6, 4, 6], "large workers boosted to High");
    // Small workers' utilization rises sharply once balanced.
    assert!(utils[0] > 60.0, "post-balance small-worker utilization {utils:?}");
}

#[test]
fn btmz_critical_rank_is_boosted_and_wins() {
    let cfg = BtMzConfig {
        zone_work: vec![0.007, 0.011, 0.025, 0.038],
        iterations: 25,
        ..Default::default()
    };
    let mut kb = KernelBuilder::new().without_hpc_class().build();
    let br = btmz::spawn(&mut kb, &cfg, &SchedulerSetup::Baseline);
    let base = kb.run_until_exited(&br, SimDuration::from_secs(120)).unwrap().as_secs_f64();

    let mut kh = KernelBuilder::new().build();
    let hr = btmz::spawn(&mut kh, &cfg, &SchedulerSetup::Hpc);
    let end = kh.run_until_exited(&hr, SimDuration::from_secs(120)).unwrap();
    let hpc = end.as_secs_f64();

    assert_eq!(kh.task(hr[3]).hw_prio, HwPriority::HIGH, "critical rank at max");
    assert!(kh.task(hr[0]).hw_prio < HwPriority::HIGH, "light rank not boosted");
    let imp = 100.0 * (base - hpc) / base;
    assert!((8.0..18.0).contains(&imp), "BT-MZ improvement {imp}% (paper: ~16%)");
    // The sibling of the boosted rank must not have escalated into a
    // priority war (the regression this suite guards against).
    assert!(kh.task(hr[2]).hw_prio <= HwPriority::MEDIUM_HIGH);
}

#[test]
fn balanced_application_is_left_alone() {
    // Four equal loads: never imbalanced, no priority should ever change.
    let cfg = MetBenchConfig { loads: vec![0.1; 4], iterations: 6, ..Default::default() };
    let mut kernel = KernelBuilder::new().build();
    let (workers, master) = metbench::spawn(&mut kernel, &cfg, &SchedulerSetup::Hpc);
    let mut all = workers.clone();
    all.push(master);
    kernel.run_until_exited(&all, SimDuration::from_secs(60)).expect("finishes");
    for &w in &workers {
        assert_eq!(kernel.task(w).hw_prio, HwPriority::MEDIUM, "no churn on balanced app");
    }
}

#[test]
fn null_mechanism_keeps_priorities_flat() {
    // On an architecture without hardware prioritization the class still
    // schedules, but priorities stay at Medium and no speedup appears.
    let cfg = metbench_cfg();
    let mut kernel = KernelBuilder::new()
        .hpc_config(hpcsched::HpcSchedConfig { power5_mechanism: false, ..Default::default() })
        .build();
    let (workers, master) = metbench::spawn(&mut kernel, &cfg, &SchedulerSetup::Hpc);
    let mut all = workers.clone();
    all.push(master);
    let end = kernel.run_until_exited(&all, SimDuration::from_secs(120)).expect("finishes");
    for &w in &workers {
        assert_eq!(kernel.task(w).hw_prio, HwPriority::MEDIUM);
    }
    let (base, _, _) = run_metbench("baseline");
    assert!((end.as_secs_f64() - base).abs() < base * 0.03, "no hardware effect");
}
